// TraceService: the in-process trace-generation service.
//
//   submit() [any thread] -> admission control -> ResultCache probe
//     -> RequestQueue (priority lanes, bounded)
//   pump()   [ONE consumer] -> BatchScheduler::form -> cancel expired
//     -> ModelRegistry snapshot -> generate_with_flow_seeds (ONE batched
//        model call) -> split per request -> fulfill futures + cache
//
// Threading model: submit() is safe from any number of threads and
// never blocks on model work (full queue => typed reject). pump() must
// be driven by exactly one consumer — either cooperatively (tests,
// closed-loop benches) or by the built-in BackgroundWorker
// (start()/stop(), used by the daemon). All model math inside pump()
// still runs under the deterministic parallel lane model.
//
// Observability: every request is traced end to end. submit() mints a
// trace id (the request id) and each stage transition appends a typed
// FlightEvent — admitted / rejected / cache-hit / deadline-swept /
// coalesced-into-batch / completed — to the service's flight recorder
// (lock-free ring, one relaxed atomic load when REPRO_TELEMETRY is
// off). The SLO tracker burns per-lane error budget on objective
// misses, and health_json() exports lane percentiles, budget status,
// and recorder accounting as one machine-readable snapshot. Tracing is
// scheduling-metadata only: it never touches RNG streams or model
// state, so served bits are identical with tracing on or off (locked
// in by tests/serve_test.cpp).
//
// Determinism: per-flow noise streams are forked from (request.seed,
// flow_index) exactly as TraceDiffusion::generate_seeded does, so a
// served response is bit-identical to the direct library call, no
// matter how requests were batched, at any REPRO_THREADS setting.
#pragma once

#include <atomic>
#include <memory>
#include <string>

#include "serve/batcher.hpp"
#include "serve/cache.hpp"
#include "serve/clock.hpp"
#include "serve/observe/flight_recorder.hpp"
#include "serve/observe/slo.hpp"
#include "serve/queue.hpp"
#include "serve/registry.hpp"
#include "serve/stats.hpp"
#include "serve/worker.hpp"

namespace repro::serve {

struct ServiceConfig {
  std::size_t queue_capacity = 64;
  BatchPolicy batch;
  std::size_t cache_capacity = 256;  ///< 0 disables the result cache
  double worker_idle_wait = 0.005;   ///< seconds; background mode only
  /// Flight-recorder ring size (events); 0 disables recording entirely.
  std::size_t flightrec_capacity = 4096;
  /// Arms the recorder even when REPRO_TELEMETRY is off (tools/tests
  /// that need a dump without enabling span collection process-wide).
  bool flightrec_force = false;
  /// Per-lane latency objectives and error-budget window.
  observe::SloPolicy slo;
  /// Service-wide generation options (guidance, constraints, ...).
  /// sampler/ddim_steps/count/seed come from each request.
  diffusion::GenerateOptions base_options;
  ClockFn clock;  ///< defaults to steady_clock_fn() when empty
  /// Shared trace-id / batch-id allocators. A ShardedService injects
  /// one pair across all its shards so ids stay unique in a merged
  /// flight dump; when null the service allocates from private
  /// counters (the single-service behavior is unchanged).
  std::shared_ptr<std::atomic<std::uint64_t>> id_source;
  std::shared_ptr<std::atomic<std::uint64_t>> batch_id_source;
};

struct SubmitResult {
  bool accepted = false;
  /// Valid when !accepted: why admission refused the request.
  RejectReason reject = RejectReason::kBadRequest;
  std::uint64_t request_id = 0;
  /// Valid when accepted; already ready on a cache hit.
  std::shared_future<Response> response;
};

class TraceService {
 public:
  TraceService(ModelRegistry& registry, ServiceConfig config);
  ~TraceService();

  TraceService(const TraceService&) = delete;
  TraceService& operator=(const TraceService&) = delete;

  /// Non-blocking request admission (see SubmitResult).
  SubmitResult submit(const GenerateRequest& request);

  /// submit() with a pre-minted trace id (the socket front-end mints at
  /// frame decode, before admission); trace_id == 0 mints one here.
  SubmitResult submit_traced(const GenerateRequest& request,
                             std::uint64_t trace_id);

  /// Cooperative drive: cancels expired requests and dispatches at most
  /// one batch. Returns the number of requests completed (served +
  /// cancelled); 0 when idle or when the batch policy prefers to wait.
  /// Reads the clock exactly once; the whole iteration — dispatch
  /// decision, deadline sweep, batch formation — sees that one `now`.
  std::size_t pump();

  /// pump() against an injected timestamp (tests; fake clocks).
  std::size_t pump_at(double now);

  /// Mints a trace id without submitting (socket front-end: the id is
  /// minted when the request frame is decoded, so protocol-level
  /// rejects have timelines too).
  std::uint64_t mint_trace_id() noexcept {
    return next_id().fetch_add(1, std::memory_order_relaxed);
  }

  /// pump() until the queue is empty (ignores the max-wait policy).
  std::size_t drain();

  /// Starts/stops the background pump thread (idempotent). If pump()
  /// throws on the worker (a serving-path bug, not a model error —
  /// those are delivered through the response future), the worker logs
  /// the flight-recorder dump for post-mortem debugging and the
  /// service closes (new submissions get kShuttingDown).
  void start();
  void stop();

  /// Refuse all future submissions with kShuttingDown.
  void close() noexcept { closed_.store(true, std::memory_order_relaxed); }

  std::size_t pending() const { return queue_.size(); }

  /// Backpressure probe for open-loop prefetchers (replay/emit): how
  /// many submissions the bounded queue would currently admit before
  /// rejecting with kQueueFull. This is a racy *hint* — concurrent
  /// producers can consume the headroom between probe and submit — so
  /// the typed reject from submit() remains the hard signal; the probe
  /// just lets steady-state prefetch avoid burning rejects.
  std::size_t queue_headroom() const {
    const std::size_t depth = queue_.size();
    const std::size_t cap = config_.queue_capacity;
    return depth >= cap ? 0 : cap - depth;
  }
  ServiceStats& stats() noexcept { return stats_; }
  const ServiceConfig& config() const noexcept { return config_; }
  ModelRegistry& registry() noexcept { return registry_; }

  /// Per-instance admission/completion tallies. ServiceStats counters
  /// are process-wide registry objects shared by every service in the
  /// process; a ShardedService needs per-shard numbers for its health
  /// report, so each instance also keeps its own.
  struct InstanceCounters {
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t rejected = 0;
    std::uint64_t cache_hits = 0;
  };
  InstanceCounters counters() const noexcept {
    InstanceCounters out;
    out.submitted = own_submitted_.load(std::memory_order_relaxed);
    out.completed = own_completed_.load(std::memory_order_relaxed);
    out.cancelled = own_cancelled_.load(std::memory_order_relaxed);
    out.rejected = own_rejected_.load(std::memory_order_relaxed);
    out.cache_hits = own_cache_hits_.load(std::memory_order_relaxed);
    return out;
  }

  /// Recent per-request events (see serve/observe/flight_recorder.hpp).
  observe::FlightRecorder& flight_recorder() noexcept { return flightrec_; }
  const observe::FlightRecorder& flight_recorder() const noexcept {
    return flightrec_;
  }
  const observe::SloTracker& slo() const noexcept { return slo_; }

  /// Machine-readable health snapshot: overall SLO status, per-lane
  /// p50/p95/p99 + error-budget windows, queue/cache/batch counters,
  /// and flight-recorder accounting. Safe to call from any thread.
  std::string health_json() const;

 private:
  std::size_t execute(FormedBatch&& formed, double now);
  void cancel(Pending&& p, RejectReason reason, double now);
  void update_queue_gauges();
  void note_event(observe::EventKind kind, std::uint64_t request_id,
                  std::uint64_t batch_id, std::uint32_t flows,
                  std::uint8_t lane, std::uint16_t detail, double time);
  std::atomic<std::uint64_t>& next_id() noexcept {
    return config_.id_source ? *config_.id_source : next_id_;
  }
  std::atomic<std::uint64_t>& next_batch_id() noexcept {
    return config_.batch_id_source ? *config_.batch_id_source
                                   : next_batch_id_;
  }

  ModelRegistry& registry_;
  ServiceConfig config_;
  ClockFn clock_;
  RequestQueue queue_;
  BatchScheduler scheduler_;
  ResultCache cache_;
  ServiceStats stats_;
  observe::FlightRecorder flightrec_;
  observe::SloTracker slo_;
  double start_time_;
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<std::uint64_t> next_batch_id_{1};
  std::atomic<std::uint64_t> own_submitted_{0};
  std::atomic<std::uint64_t> own_completed_{0};
  std::atomic<std::uint64_t> own_cancelled_{0};
  std::atomic<std::uint64_t> own_rejected_{0};
  std::atomic<std::uint64_t> own_cache_hits_{0};
  std::atomic<bool> closed_{false};
  std::unique_ptr<BackgroundWorker> worker_;
};

}  // namespace repro::serve
