// Request/response types of the trace-generation service.
//
// A GenerateRequest names a registered model and a class and asks for
// `count` flows under a per-request seed. Responses are delivered
// through a std::shared_future<Response>; admission-control rejections
// (queue full, unknown model/class) are returned synchronously from
// submit() as a typed RejectReason so a loaded service never blocks the
// caller.
//
// Determinism contract: flow i of a request is generated from the
// stream fork_flow_seed(request.seed, i) — the same derivation
// TraceDiffusion::generate_seeded uses — so a served response is
// bit-identical to a direct library call with the same
// (model checkpoint, class, seed, sampler, steps, precision, count), no
// matter how the batch scheduler coalesced it with other requests.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "diffusion/pipeline.hpp"
#include "net/flow.hpp"

namespace repro::serve {

/// Scheduling lanes; lower value drains first.
enum class Priority : int { kHigh = 0, kNormal = 1, kLow = 2 };
inline constexpr std::size_t kPriorityLanes = 3;

/// Typed admission / cancellation reasons.
enum class RejectReason {
  kQueueFull,        ///< bounded queue at capacity (backpressure)
  kDeadlineExpired,  ///< deadline passed before model work started
  kUnknownModel,     ///< no such model in the registry
  kUnknownClass,     ///< class id outside the model's prompt set
  kBadRequest,       ///< malformed request (e.g. count == 0)
  kShuttingDown,     ///< service stopped accepting work
};

const char* to_string(RejectReason reason) noexcept;

/// No deadline.
inline constexpr double kNoDeadline = std::numeric_limits<double>::infinity();

struct GenerateRequest {
  std::string model = "default";  ///< registry name
  int class_id = 0;
  std::size_t count = 1;      ///< flows requested
  std::uint64_t seed = 0;     ///< request-level seed (forked per flow)
  diffusion::SamplerKind sampler = diffusion::SamplerKind::kDdim;
  std::size_t ddim_steps = 20;
  /// Numeric route for the model call (nn/precision.hpp). kInt8 output
  /// differs from kFp32 by design, so precision is part of the cache
  /// and coalescing keys — requests on different routes never share a
  /// batch or a cached result.
  nn::Precision precision = nn::Precision::kFp32;
  Priority priority = Priority::kNormal;
  /// Absolute service-clock deadline (seconds); if it passes before the
  /// request's batch is formed, the request is cancelled without any
  /// model work.
  double deadline = kNoDeadline;
};

enum class ResponseStatus { kOk, kCancelled };

struct Response {
  ResponseStatus status = ResponseStatus::kOk;
  /// Valid when status == kCancelled (e.g. kDeadlineExpired).
  RejectReason cancel_reason = RejectReason::kDeadlineExpired;
  std::uint64_t request_id = 0;
  std::vector<net::Flow> flows;
  std::string model_version;  ///< version that actually served the request
  bool cache_hit = false;
  double queue_wait = 0.0;     ///< seconds from submit to batch formation
  double total_latency = 0.0;  ///< seconds from submit to completion
  std::size_t batch_flows = 0;  ///< size of the model call that served it
  /// Trace id of the model call that served it (0 for cache hits and
  /// cancellations); joins the response to the flight-recorder timeline.
  std::uint64_t batch_id = 0;
};

}  // namespace repro::serve
