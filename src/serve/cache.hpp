// Result cache: LRU over complete responses, keyed by everything that
// determines the generated bits.
//
// The determinism contract makes caching sound: (model_version, class,
// seed, sampler, steps, precision, count) fully determines a seeded generation's
// output, so a hit can return the stored flows verbatim — a repeated
// request is free and bit-identical. model_version in the key means a
// registry hot-swap naturally invalidates (old entries become
// unreachable and age out of the LRU).
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "net/flow.hpp"
#include "serve/request.hpp"

namespace repro::serve {

struct CacheKey {
  std::string model_version;
  int class_id = 0;
  std::uint64_t seed = 0;
  diffusion::SamplerKind sampler = diffusion::SamplerKind::kDdim;
  std::size_t steps = 0;
  nn::Precision precision = nn::Precision::kFp32;
  std::size_t count = 0;
};

CacheKey cache_key_of(const GenerateRequest& request,
                      const std::string& model_version);

class ResultCache {
 public:
  /// `capacity` = max cached responses; 0 disables the cache entirely.
  explicit ResultCache(std::size_t capacity);

  /// Copy of the cached flows for `key` (promoted to most-recent), or
  /// nullopt on miss.
  std::optional<std::vector<net::Flow>> get(const CacheKey& key);

  /// Inserts (or refreshes) `key`, evicting the least-recently-used
  /// entry when over capacity.
  void put(const CacheKey& key, std::vector<net::Flow> flows);

  std::size_t size() const;
  std::size_t capacity() const noexcept { return capacity_; }

 private:
  using Entry = std::pair<std::string, std::vector<net::Flow>>;
  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::list<Entry> lru_;  // front = most recent
  std::map<std::string, std::list<Entry>::iterator> index_;
};

}  // namespace repro::serve
