#include "serve/service.hpp"

#include <exception>
#include <utility>

#include "common/contracts.hpp"

namespace repro::serve {

TraceService::TraceService(ModelRegistry& registry, ServiceConfig config)
    : registry_(registry),
      config_(std::move(config)),
      clock_(config_.clock ? config_.clock : steady_clock_fn()),
      queue_(config_.queue_capacity),
      scheduler_(config_.batch),
      cache_(config_.cache_capacity) {}

TraceService::~TraceService() { stop(); }

SubmitResult TraceService::submit(const GenerateRequest& request) {
  SubmitResult result;
  stats_.submitted.add();
  if (closed_.load(std::memory_order_relaxed)) {
    result.reject = RejectReason::kShuttingDown;
    stats_.rejected_invalid.add();
    return result;
  }
  if (request.count == 0) {
    result.reject = RejectReason::kBadRequest;
    stats_.rejected_invalid.add();
    return result;
  }
  const auto snap = registry_.snapshot(request.model);
  if (!snap) {
    result.reject = RejectReason::kUnknownModel;
    stats_.rejected_invalid.add();
    return result;
  }
  if (request.class_id < 0 ||
      static_cast<std::size_t>(request.class_id) >= snap->num_classes) {
    result.reject = RejectReason::kUnknownClass;
    stats_.rejected_invalid.add();
    return result;
  }

  const double now = clock_();
  result.request_id = next_id_.fetch_add(1, std::memory_order_relaxed);

  // Cache probe: a hit responds immediately without touching the queue.
  if (auto hit = cache_.get(cache_key_of(request, snap->version))) {
    stats_.cache_hits.add();
    stats_.completed.add();
    stats_.flows_served.add(hit->size());
    Response response;
    response.request_id = result.request_id;
    response.flows = std::move(*hit);
    response.model_version = snap->version;
    response.cache_hit = true;
    std::promise<Response> promise;
    result.response = promise.get_future().share();
    promise.set_value(std::move(response));
    result.accepted = true;
    return result;
  }
  stats_.cache_misses.add();

  Pending pending;
  pending.request = request;
  pending.id = result.request_id;
  pending.enqueue_time = now;
  result.response = pending.promise.get_future().share();
  if (auto reject = queue_.try_push(std::move(pending))) {
    result.reject = *reject;
    stats_.rejected_full.add();
    return result;
  }
  stats_.accepted.add();
  stats_.queue_depth.set(static_cast<double>(queue_.size()));
  if (worker_) worker_->notify();
  result.accepted = true;
  return result;
}

void TraceService::cancel(Pending&& p, RejectReason reason, double now) {
  stats_.cancelled_deadline.add();
  Response response;
  response.status = ResponseStatus::kCancelled;
  response.cancel_reason = reason;
  response.request_id = p.id;
  response.queue_wait = now - p.enqueue_time;
  response.total_latency = response.queue_wait;
  p.promise.set_value(std::move(response));
}

std::size_t TraceService::pump() {
  const double now = clock_();
  if (!scheduler_.should_dispatch(queue_, now)) {
    // Even while batching waits, expired requests must not linger.
    std::size_t cancelled = 0;
    for (Pending& p : queue_.extract_matching(
             [now](const Pending& q) { return q.request.deadline < now; },
             config_.queue_capacity)) {
      cancel(std::move(p), RejectReason::kDeadlineExpired, now);
      ++cancelled;
    }
    stats_.queue_depth.set(static_cast<double>(queue_.size()));
    return cancelled;
  }
  FormedBatch formed = scheduler_.form(queue_, now);
  const std::size_t done = execute(std::move(formed), now);
  stats_.queue_depth.set(static_cast<double>(queue_.size()));
  return done;
}

std::size_t TraceService::drain() {
  std::size_t total = 0;
  while (!queue_.empty()) {
    const double now = clock_();
    total += execute(scheduler_.form(queue_, now), now);
  }
  stats_.queue_depth.set(0.0);
  return total;
}

std::size_t TraceService::execute(FormedBatch&& formed, double now) {
  std::size_t done = 0;
  for (Pending& p : formed.expired) {
    cancel(std::move(p), RejectReason::kDeadlineExpired, now);
    ++done;
  }
  if (formed.batch.empty()) return done;

  const auto snap = registry_.snapshot(formed.key.model);
  if (!snap) {
    // Model was removed after admission: typed cancellation, not a drop.
    for (Pending& p : formed.batch) {
      cancel(std::move(p), RejectReason::kUnknownModel, now);
      ++done;
    }
    return done;
  }

  // ONE batched model call over the concatenated per-flow seed streams.
  // Flow j of request r uses fork_flow_seed(r.seed, j), so the result
  // is bit-identical to serving each request alone.
  std::vector<std::uint64_t> flow_seeds;
  flow_seeds.reserve(formed.flows);
  for (const Pending& p : formed.batch) {
    for (std::size_t i = 0; i < p.request.count; ++i) {
      flow_seeds.push_back(diffusion::fork_flow_seed(p.request.seed, i));
    }
  }
  diffusion::GenerateOptions opts = config_.base_options;
  opts.sampler = formed.key.sampler;
  opts.ddim_steps = formed.key.steps;
  opts.count = formed.flows;

  stats_.batches.add();
  stats_.batch_size.observe(static_cast<double>(formed.flows));

  std::vector<net::Flow> flows;
  try {
    flows = snap->pipeline->generate_with_flow_seeds(formed.key.class_id,
                                                     opts, flow_seeds);
  } catch (...) {
    const std::exception_ptr error = std::current_exception();
    for (Pending& p : formed.batch) {
      p.promise.set_exception(error);
      ++done;
    }
    return done;
  }
  REPRO_ENSURE(flows.size() == formed.flows,
               "serve: batched generation returned wrong flow count");

  const double finish = clock_();
  std::size_t offset = 0;
  for (Pending& p : formed.batch) {
    Response response;
    response.request_id = p.id;
    response.model_version = snap->version;
    response.flows.assign(
        std::make_move_iterator(flows.begin() + static_cast<long>(offset)),
        std::make_move_iterator(flows.begin() +
                                static_cast<long>(offset + p.request.count)));
    offset += p.request.count;
    response.queue_wait = now - p.enqueue_time;
    response.total_latency = finish - p.enqueue_time;
    response.batch_flows = formed.flows;
    stats_.queue_wait.observe(response.queue_wait);
    stats_.latency.observe(response.total_latency);
    stats_.completed.add();
    stats_.flows_served.add(p.request.count);
    cache_.put(cache_key_of(p.request, snap->version), response.flows);
    p.promise.set_value(std::move(response));
    ++done;
  }
  return done;
}

void TraceService::start() {
  if (worker_) return;
  worker_ = std::make_unique<BackgroundWorker>([this] { return pump(); },
                                               config_.worker_idle_wait);
}

void TraceService::stop() {
  if (!worker_) return;
  worker_->stop();
  worker_.reset();
}

}  // namespace repro::serve
