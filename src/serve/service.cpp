#include "serve/service.hpp"

#include <exception>
#include <utility>

#include "common/contracts.hpp"
#include "common/logging.hpp"
#include "common/telemetry/export.hpp"
#include "common/telemetry/trace.hpp"

namespace repro::serve {
namespace {

std::uint8_t lane_index(Priority priority) noexcept {
  return static_cast<std::uint8_t>(priority);
}

}  // namespace

TraceService::TraceService(ModelRegistry& registry, ServiceConfig config)
    : registry_(registry),
      config_(std::move(config)),
      clock_(config_.clock ? config_.clock : steady_clock_fn()),
      queue_(config_.queue_capacity),
      scheduler_(config_.batch),
      cache_(config_.cache_capacity),
      flightrec_(config_.flightrec_capacity),
      slo_(config_.slo),
      start_time_(clock_()) {
  flightrec_.set_forced(config_.flightrec_force);
}

TraceService::~TraceService() { stop(); }

void TraceService::note_event(observe::EventKind kind,
                              std::uint64_t request_id, std::uint64_t batch_id,
                              std::uint32_t flows, std::uint8_t lane,
                              std::uint16_t detail, double time) {
  // One relaxed-load bail-out: with REPRO_TELEMETRY off (and no force
  // flag) tracing costs nothing beyond this check on the serving path.
  if (!flightrec_.armed()) return;
  observe::FlightEvent event;
  event.time = time;
  event.request_id = request_id;
  event.batch_id = batch_id;
  event.flows = flows;
  event.kind = kind;
  event.lane = lane;
  event.detail = detail;
  flightrec_.force_record(event);
}

SubmitResult TraceService::submit(const GenerateRequest& request) {
  return submit_traced(request, 0);
}

SubmitResult TraceService::submit_traced(const GenerateRequest& request,
                                         std::uint64_t trace_id) {
  REPRO_SPAN("serve.submit");
  SubmitResult result;
  stats_.submitted.add();
  own_submitted_.fetch_add(1, std::memory_order_relaxed);
  // The trace id is minted at admission — before any validation — so
  // even rejected requests have a timeline in the flight recorder. The
  // socket front-end mints earlier (at frame decode) and passes it in.
  result.request_id = trace_id != 0 ? trace_id : mint_trace_id();
  const double now = clock_();
  const std::uint8_t lane = lane_index(request.priority);
  const auto flows = static_cast<std::uint32_t>(request.count);
  note_event(observe::EventKind::kSubmitted, result.request_id, 0, flows,
             lane, 0, now);

  const auto reject = [&](RejectReason reason) {
    result.reject = reason;
    own_rejected_.fetch_add(1, std::memory_order_relaxed);
    if (reason == RejectReason::kQueueFull) {
      stats_.rejected_full.add();
    } else {
      stats_.rejected_invalid.add();
    }
    stats_.reject_reason(reason).add();
    note_event(observe::EventKind::kRejected, result.request_id, 0, flows,
               lane, static_cast<std::uint16_t>(reason), now);
  };

  if (closed_.load(std::memory_order_relaxed)) {
    reject(RejectReason::kShuttingDown);
    return result;
  }
  if (request.count == 0) {
    reject(RejectReason::kBadRequest);
    return result;
  }
  const auto snap = registry_.snapshot(request.model);
  if (!snap) {
    reject(RejectReason::kUnknownModel);
    return result;
  }
  if (request.class_id < 0 ||
      static_cast<std::size_t>(request.class_id) >= snap->num_classes) {
    reject(RejectReason::kUnknownClass);
    return result;
  }
  if (request.sampler == diffusion::SamplerKind::kDistilled &&
      !snap->supports_distilled(request.ddim_steps)) {
    // Fail fast at admission: the pipeline would throw mid-batch (and
    // take its coalesced batch-mates down with it) for a step count no
    // distilled stage was fitted for.
    reject(RejectReason::kBadRequest);
    return result;
  }

  // Cache probe: a hit responds immediately without touching the queue.
  if (auto hit = cache_.get(cache_key_of(request, snap->version))) {
    stats_.cache_hits.add();
    stats_.completed.add();
    own_cache_hits_.fetch_add(1, std::memory_order_relaxed);
    own_completed_.fetch_add(1, std::memory_order_relaxed);
    stats_.flows_served.add(hit->size());
    note_event(observe::EventKind::kCacheHit, result.request_id, 0, flows,
               lane, 0, now);
    Response response;
    response.request_id = result.request_id;
    response.flows = std::move(*hit);
    response.model_version = snap->version;
    response.cache_hit = true;
    std::promise<Response> promise;
    result.response = promise.get_future().share();
    promise.set_value(std::move(response));
    result.accepted = true;
    return result;
  }
  stats_.cache_misses.add();

  Pending pending;
  pending.request = request;
  pending.id = result.request_id;
  pending.enqueue_time = now;
  result.response = pending.promise.get_future().share();
  if (auto refused = queue_.try_push(std::move(pending))) {
    reject(*refused);
    return result;
  }
  stats_.accepted.add();
  stats_.lane_of(request.priority).admitted.add();
  note_event(observe::EventKind::kAdmitted, result.request_id, 0, flows,
             lane, 0, now);
  update_queue_gauges();
  if (worker_) worker_->notify();
  result.accepted = true;
  return result;
}

void TraceService::cancel(Pending&& p, RejectReason reason, double now) {
  stats_.cancelled_deadline.add();
  own_cancelled_.fetch_add(1, std::memory_order_relaxed);
  stats_.lane_of(p.request.priority).cancelled.add();
  const std::uint8_t lane = lane_index(p.request.priority);
  const auto flows = static_cast<std::uint32_t>(p.request.count);
  slo_.on_cancelled(lane, now);
  if (reason == RejectReason::kDeadlineExpired) {
    note_event(observe::EventKind::kDeadlineSwept, p.id, 0, flows, lane, 0,
               now);
  }
  note_event(observe::EventKind::kCancelled, p.id, 0, flows, lane,
             static_cast<std::uint16_t>(reason), now);
  Response response;
  response.status = ResponseStatus::kCancelled;
  response.cancel_reason = reason;
  response.request_id = p.id;
  response.queue_wait = now - p.enqueue_time;
  response.total_latency = response.queue_wait;
  p.promise.set_value(std::move(response));
}

std::size_t TraceService::pump() { return pump_at(clock_()); }

std::size_t TraceService::pump_at(double now) {
  // `now` is sampled once per iteration and injected everywhere a
  // deadline is compared — a sweep that re-read the clock per request
  // would cancel later requests against a fresher timestamp whenever
  // the lane stalls mid-sweep (regression-locked in serve_test.cpp).
  if (!scheduler_.should_dispatch(queue_, now)) {
    // Even while batching waits, expired requests must not linger.
    std::size_t cancelled = 0;
    for (Pending& p : queue_.sweep_expired(now, config_.queue_capacity)) {
      cancel(std::move(p), RejectReason::kDeadlineExpired, now);
      ++cancelled;
    }
    update_queue_gauges();
    return cancelled;
  }
  FormedBatch formed = scheduler_.form(queue_, now);
  const std::size_t done = execute(std::move(formed), now);
  update_queue_gauges();
  return done;
}

std::size_t TraceService::drain() {
  std::size_t total = 0;
  while (!queue_.empty()) {
    const double now = clock_();
    total += execute(scheduler_.form(queue_, now), now);
  }
  update_queue_gauges();
  return total;
}

std::size_t TraceService::execute(FormedBatch&& formed, double now) {
  std::size_t done = 0;
  for (Pending& p : formed.expired) {
    cancel(std::move(p), RejectReason::kDeadlineExpired, now);
    ++done;
  }
  if (formed.batch.empty()) return done;

  const std::uint64_t batch_id =
      next_batch_id().fetch_add(1, std::memory_order_relaxed);
  telemetry::SpanTimer span("serve.batch.execute");
  span.arg("batch_id", batch_id)
      .arg("requests", static_cast<std::uint64_t>(formed.batch.size()))
      .arg("flows", static_cast<std::uint64_t>(formed.flows));

  const auto snap = registry_.snapshot(formed.key.model);
  if (!snap) {
    // Model was removed after admission: typed cancellation, not a drop.
    for (Pending& p : formed.batch) {
      cancel(std::move(p), RejectReason::kUnknownModel, now);
      ++done;
    }
    return done;
  }
  span.arg("model_version", snap->version);
  for (const Pending& p : formed.batch) {
    note_event(observe::EventKind::kCoalesced, p.id, batch_id,
               static_cast<std::uint32_t>(p.request.count),
               lane_index(p.request.priority), 0, now);
  }

  // ONE batched model call over the concatenated per-flow seed streams.
  // Flow j of request r uses fork_flow_seed(r.seed, j), so the result
  // is bit-identical to serving each request alone.
  std::vector<std::uint64_t> flow_seeds;
  flow_seeds.reserve(formed.flows);
  for (const Pending& p : formed.batch) {
    for (std::size_t i = 0; i < p.request.count; ++i) {
      flow_seeds.push_back(diffusion::fork_flow_seed(p.request.seed, i));
    }
  }
  diffusion::GenerateOptions opts = config_.base_options;
  opts.sampler = formed.key.sampler;
  opts.ddim_steps = formed.key.steps;
  opts.precision = formed.key.precision;
  opts.count = formed.flows;

  stats_.batches.add();
  stats_.batch_size.observe(static_cast<double>(formed.flows));
  note_event(observe::EventKind::kModelStart, 0, batch_id,
             static_cast<std::uint32_t>(formed.flows), 0, 0, now);

  std::vector<net::Flow> flows;
  try {
    flows = snap->pipeline->generate_with_flow_seeds(formed.key.class_id,
                                                     opts, flow_seeds);
  } catch (...) {
    // Model failure: flows=0 marks the aborted call; the member
    // timelines stay open, which is exactly what a post-mortem dump
    // should show.
    note_event(observe::EventKind::kModelEnd, 0, batch_id, 0, 0, 0, now);
    const std::exception_ptr error = std::current_exception();
    for (Pending& p : formed.batch) {
      p.promise.set_exception(error);
      ++done;
    }
    return done;
  }
  REPRO_ENSURE(flows.size() == formed.flows,
               "serve: batched generation returned wrong flow count");

  const double finish = clock_();
  note_event(observe::EventKind::kModelEnd, 0, batch_id,
             static_cast<std::uint32_t>(formed.flows), 0, 0, finish);
  std::size_t offset = 0;
  for (Pending& p : formed.batch) {
    Response response;
    response.request_id = p.id;
    response.model_version = snap->version;
    response.flows.assign(
        std::make_move_iterator(flows.begin() + static_cast<long>(offset)),
        std::make_move_iterator(flows.begin() +
                                static_cast<long>(offset + p.request.count)));
    offset += p.request.count;
    response.queue_wait = now - p.enqueue_time;
    response.total_latency = finish - p.enqueue_time;
    response.batch_flows = formed.flows;
    response.batch_id = batch_id;
    stats_.queue_wait.observe(response.queue_wait);
    stats_.latency.observe(response.total_latency);
    stats_.completed.add();
    own_completed_.fetch_add(1, std::memory_order_relaxed);
    stats_.flows_served.add(p.request.count);
    LaneStats& lane = stats_.lane_of(p.request.priority);
    lane.queue_wait.observe(response.queue_wait);
    lane.latency.observe(response.total_latency);
    lane.completed.add();
    slo_.on_completed(lane_index(p.request.priority), response.total_latency,
                      finish);
    note_event(observe::EventKind::kCompleted, p.id, batch_id,
               static_cast<std::uint32_t>(p.request.count),
               lane_index(p.request.priority), 0, finish);
    cache_.put(cache_key_of(p.request, snap->version), response.flows);
    p.promise.set_value(std::move(response));
    ++done;
  }
  return done;
}

void TraceService::update_queue_gauges() {
  const auto sizes = queue_.lane_sizes();
  std::size_t total = 0;
  for (std::size_t i = 0; i < kPriorityLanes; ++i) {
    stats_.lane[i].queue_depth.set(static_cast<double>(sizes[i]));
    total += sizes[i];
  }
  stats_.queue_depth.set(static_cast<double>(total));
}

std::string TraceService::health_json() const {
  const double now = clock_();
  telemetry::JsonWriter json;
  json.begin_object();
  json.key("status");
  json.value(slo_.overall_status(now));
  json.key("uptime_seconds");
  json.value(now - start_time_);

  json.key("requests");
  json.begin_object();
  json.key("submitted");
  json.value(stats_.submitted.value());
  json.key("accepted");
  json.value(stats_.accepted.value());
  json.key("completed");
  json.value(stats_.completed.value());
  json.key("rejected_queue_full");
  json.value(stats_.rejected_full.value());
  json.key("rejected_invalid");
  json.value(stats_.rejected_invalid.value());
  json.key("cancelled");
  json.value(stats_.cancelled_deadline.value());
  json.key("cache_hits");
  json.value(stats_.cache_hits.value());
  json.key("batches");
  json.value(stats_.batches.value());
  json.end_object();

  json.key("queue");
  json.begin_object();
  json.key("depth");
  json.value(static_cast<std::uint64_t>(queue_.size()));
  json.key("capacity");
  json.value(static_cast<std::uint64_t>(config_.queue_capacity));
  json.end_object();

  json.key("lanes");
  json.begin_array();
  const auto lane_sizes = queue_.lane_sizes();
  for (std::size_t i = 0; i < kPriorityLanes; ++i) {
    const LaneStats& lane = stats_.lane[i];
    const auto latency = lane.latency.snapshot();
    const observe::LaneBudget budget = slo_.lane_budget(i, now);
    json.begin_object();
    json.key("lane");
    json.value(static_cast<std::uint64_t>(i));
    json.key("objective_seconds");
    json.value(slo_.policy().latency_objective[i]);
    json.key("queue_depth");
    json.value(static_cast<std::uint64_t>(lane_sizes[i]));
    json.key("admitted");
    json.value(lane.admitted.value());
    json.key("completed");
    json.value(lane.completed.value());
    json.key("cancelled");
    json.value(lane.cancelled.value());
    json.key("latency_p50");
    json.value(latency.quantile(0.5));
    json.key("latency_p95");
    json.value(latency.quantile(0.95));
    json.key("latency_p99");
    json.value(latency.quantile(0.99));
    json.key("window_total");
    json.value(budget.total);
    json.key("window_violations");
    json.value(budget.violations);
    json.key("budget_remaining");
    json.value(budget.budget_remaining);
    json.key("budget_status");
    json.value(budget.status);
    json.end_object();
  }
  json.end_array();

  json.key("flight_recorder");
  json.begin_object();
  json.key("capacity");
  json.value(static_cast<std::uint64_t>(flightrec_.capacity()));
  json.key("recorded");
  json.value(flightrec_.recorded());
  json.key("overwritten");
  json.value(flightrec_.overwritten());
  json.key("armed");
  json.value(flightrec_.armed());
  json.end_object();

  json.end_object();
  return std::move(json).str();
}

void TraceService::start() {
  if (worker_) return;
  worker_ = std::make_unique<BackgroundWorker>(
      [this]() -> std::size_t {
        try {
          return pump();
        } catch (const std::exception& error) {
          // Serving-path bug (model errors are delivered through the
          // response future, not thrown out of pump): preserve the
          // evidence, then refuse new work instead of crashing the host.
          REPRO_LOG_ERROR() << "serve: worker panic: " << error.what();
          REPRO_LOG_ERROR() << "serve: flight recorder dump: "
                            << flightrec_.dump_json();
          close();
          return 0;
        }
      },
      config_.worker_idle_wait);
}

void TraceService::stop() {
  if (!worker_) return;
  worker_->stop();
  worker_.reset();
}

}  // namespace repro::serve
