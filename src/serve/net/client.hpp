// BlockingClient: a small synchronous client for the socket front-end.
//
// Tools (repro_client), benches (serve_load's open-loop socket stage)
// and the conformance tests all talk to SocketServer through this one
// implementation, so the encode/decode path under test is the same one
// users run. The client supports pipelining: send() any number of
// request frames, then read replies as they arrive — replies carry the
// server-assigned request id, and with sharded lanes they may come back
// in a different order than the requests went out.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "serve/net/protocol.hpp"

namespace repro::serve::wire {

/// One decoded reply frame: exactly one of response/error is engaged.
struct Reply {
  std::optional<WireResponse> response;
  std::optional<WireError> error;

  bool ok() const noexcept { return response.has_value(); }
};

class BlockingClient {
 public:
  /// Connects to 127.0.0.1:port; throws std::runtime_error on failure.
  explicit BlockingClient(std::uint16_t port,
                          std::size_t max_payload = kDefaultMaxPayload);
  ~BlockingClient();

  BlockingClient(const BlockingClient&) = delete;
  BlockingClient& operator=(const BlockingClient&) = delete;

  /// Encodes and writes one request frame (blocking until accepted by
  /// the kernel). deadline_ms < 0 means no deadline.
  void send(const GenerateRequest& request, double deadline_ms = -1.0);

  /// Writes raw bytes verbatim — the conformance tests use this to
  /// throw malformed frames at a live server.
  void send_raw(const void* data, std::size_t n);

  /// Blocks until one reply frame arrives (or timeout/EOF -> nullopt).
  /// A malformed reply stream throws std::runtime_error.
  std::optional<Reply> read_reply(double timeout_seconds);

  /// send() + read_reply() for the simple one-request case.
  std::optional<Reply> call(const GenerateRequest& request,
                            double deadline_ms = -1.0,
                            double timeout_seconds = 30.0);

  /// Half-closes the write side (the server drains pending replies,
  /// then closes).
  void shutdown_writes();

  /// True once the server closed the connection.
  bool eof() const noexcept { return eof_; }

 private:
  int fd_ = -1;
  FrameDecoder decoder_;
  bool eof_ = false;
};

}  // namespace repro::serve::wire
