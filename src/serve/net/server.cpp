#include "serve/net/server.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include "common/logging.hpp"
#include "common/telemetry/export.hpp"
#include "common/telemetry/metrics.hpp"

namespace repro::serve::wire {
namespace {

/// serve.net.* registry instruments (process-global, cached once, same
/// pattern as ServiceStats).
struct NetStats {
  telemetry::Counter& conns_opened;
  telemetry::Counter& conns_closed;
  telemetry::Counter& frames_in;
  telemetry::Counter& frames_out;
  telemetry::Counter& protocol_errors;
  telemetry::Counter& bytes_in;
  telemetry::Counter& bytes_out;
  telemetry::Gauge& connections_open;
  telemetry::Histogram& frame_bytes;

  static NetStats& instance() {
    auto& reg = telemetry::Registry::instance();
    static NetStats stats{
        reg.counter("serve.net.conns_opened"),
        reg.counter("serve.net.conns_closed"),
        reg.counter("serve.net.frames_in"),
        reg.counter("serve.net.frames_out"),
        reg.counter("serve.net.protocol_errors"),
        reg.counter("serve.net.bytes_in"),
        reg.counter("serve.net.bytes_out"),
        reg.gauge("serve.net.connections_open"),
        reg.histogram("serve.net.frame_bytes",
                      telemetry::Histogram::exponential_bounds(64.0, 16.0e6,
                                                               24)),
    };
    return stats;
  }
};

bool set_nonblocking(int fd) noexcept {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

bool future_ready(const std::shared_future<Response>& f) {
  return f.wait_for(std::chrono::seconds(0)) == std::future_status::ready;
}

std::uint32_t clip_u32(std::size_t n) noexcept {
  return n > 0xFFFFFFFFu ? 0xFFFFFFFFu : static_cast<std::uint32_t>(n);
}

}  // namespace

SocketServer::SocketServer(ShardedService& backend, ServerConfig config)
    : backend_(backend), config_(config) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error(std::string("socket(): ") +
                             std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(config_.port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listen_fd_, config_.backlog) != 0 ||
      !set_nonblocking(listen_fd_)) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("bind/listen(127.0.0.1:" +
                             std::to_string(config_.port) + "): " + why);
  }

  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  } else {
    port_ = config_.port;
  }

  backend_.set_transport_health([this] { return health_fragment(); });
}

SocketServer::~SocketServer() {
  stop();
  for (Connection& conn : conns_) close_connection(conn);
  conns_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  backend_.set_transport_health({});
}

void SocketServer::start() {
  if (worker_) return;
  const int timeout_ms =
      config_.poll_wait > 0 ? static_cast<int>(config_.poll_wait * 1000.0)
                            : 0;
  // poll() is the loop's sleep; the worker itself never idles.
  worker_ = std::make_unique<BackgroundWorker>(
      [this, timeout_ms] { return poll_once(timeout_ms); }, 0.0);
}

void SocketServer::stop() {
  if (!worker_) return;
  worker_->stop();
  worker_.reset();
}

std::size_t SocketServer::poll_once(int timeout_ms) {
  std::vector<pollfd> fds;
  fds.reserve(conns_.size() + 1);
  const bool accepting = conns_.size() < config_.max_connections;
  fds.push_back(pollfd{listen_fd_,
                       static_cast<short>(accepting ? POLLIN : 0), 0});
  for (const Connection& conn : conns_) {
    short events = POLLIN;
    if (conn.out_pos < conn.out.size()) events |= POLLOUT;
    fds.push_back(pollfd{conn.fd, events, 0});
  }

  // Model completions (futures) don't wake poll(); a pending reply
  // caps the wait so harvest latency is bounded by the loop period.
  int wait_ms = timeout_ms;
  for (const Connection& conn : conns_) {
    if (!conn.waiting.empty()) {
      wait_ms = 0;
      break;
    }
  }

  const int ready = ::poll(fds.data(), fds.size(), wait_ms);
  if (ready < 0 && errno != EINTR) {
    REPRO_LOG_WARN() << "serve.net poll(): " << std::strerror(errno);
    return 0;
  }

  std::size_t work = 0;
  if ((fds[0].revents & POLLIN) != 0) work += accept_ready();
  for (std::size_t i = 0; i < conns_.size(); ++i) {
    Connection& conn = conns_[i];
    const short revents = fds[i + 1].revents;
    if ((revents & (POLLIN | POLLERR | POLLHUP)) != 0) {
      work += read_ready(conn);
    }
    work += harvest(conn);
    if (conn.out_pos < conn.out.size()) flush(conn);
  }
  reap_closed();
  return work;
}

std::size_t SocketServer::accept_ready() {
  std::size_t accepted = 0;
  while (conns_.size() < config_.max_connections) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN: drained
    }
    if (!set_nonblocking(fd)) {
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

    Connection conn;
    conn.fd = fd;
    conn.id = next_conn_id_++;
    conn.decoder = FrameDecoder(config_.max_payload);
    conns_.push_back(std::move(conn));

    observe::FlightEvent event;
    event.time = backend_.now();
    event.batch_id = conns_.back().id;
    event.kind = observe::EventKind::kConnOpened;
    backend_.frontend_recorder().record(event);

    opened_.fetch_add(1, std::memory_order_relaxed);
    open_.store(conns_.size(), std::memory_order_relaxed);
    NetStats::instance().conns_opened.add(1);
    NetStats::instance().connections_open.set(
        static_cast<double>(conns_.size()));
    ++accepted;
  }
  return accepted;
}

std::size_t SocketServer::read_ready(Connection& conn) {
  std::uint8_t buf[65536];
  for (;;) {
    const ssize_t n = ::recv(conn.fd, buf, sizeof buf, 0);
    if (n > 0) {
      bytes_in_.fetch_add(static_cast<std::uint64_t>(n),
                          std::memory_order_relaxed);
      NetStats::instance().bytes_in.add(static_cast<std::uint64_t>(n));
      conn.decoder.feed(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {
      conn.eof = true;  // half-close: finish pending replies, then reap
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    conn.dead = true;
    break;
  }
  return process_frames(conn);
}

std::size_t SocketServer::process_frames(Connection& conn) {
  std::size_t work = 0;
  Frame frame;
  while (!conn.closing && !conn.dead) {
    const DecodeStatus status = conn.decoder.next(frame);
    if (status == DecodeStatus::kNeedMore) break;
    if (status == DecodeStatus::kFrame) {
      handle_frame(conn, frame);
      ++work;
      continue;
    }
    // Framing error: byte sync with the peer is gone. One typed error
    // frame (request_id 0 — no request was decoded), then close.
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    NetStats::instance().protocol_errors.add(1);
    send_error(conn, 0, "bad_request",
               std::string("framing error: ") + to_string(status));
    conn.closing = true;
    ++work;
  }
  return work;
}

void SocketServer::handle_frame(Connection& conn, const Frame& frame) {
  frames_in_.fetch_add(1, std::memory_order_relaxed);
  ++conn.frames_in;
  NetStats::instance().frames_in.add(1);
  NetStats::instance().frame_bytes.observe(
      static_cast<double>(frame.payload.size()));

  // The trace id is minted HERE, at frame decode — protocol-level
  // rejects that never reach submit() still get a timeline.
  const std::uint64_t trace_id = backend_.mint_trace_id();
  const double now = backend_.now();
  observe::FlightEvent event;
  event.time = now;
  event.request_id = trace_id;
  event.batch_id = conn.id;
  event.flows = clip_u32(frame.payload.size());
  event.kind = observe::EventKind::kFrameDecoded;
  backend_.frontend_recorder().record(event);

  if (frame.type != FrameType::kRequest) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    NetStats::instance().protocol_errors.add(1);
    send_error(conn, trace_id, "bad_request",
               "only request frames are accepted from clients");
    return;
  }

  std::string error;
  const std::optional<WireRequest> parsed =
      parse_request_payload(frame.payload, error);
  if (!parsed) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    NetStats::instance().protocol_errors.add(1);
    send_error(conn, trace_id, "bad_request", error);
    return;
  }

  GenerateRequest request = parsed->request;
  if (parsed->deadline_ms >= 0) {
    request.deadline = now + parsed->deadline_ms / 1000.0;
  }
  SubmitResult result = backend_.submit_traced(request, trace_id);
  if (!result.accepted) {
    send_error(conn, trace_id, to_string(result.reject),
               "admission refused");
    return;
  }
  conn.waiting.push_back(PendingReply{trace_id, std::move(result.response)});
}

std::size_t SocketServer::harvest(Connection& conn) {
  std::size_t sent = 0;
  for (std::size_t i = 0; i < conn.waiting.size();) {
    if (!future_ready(conn.waiting[i].response)) {
      ++i;
      continue;
    }
    const Response& response = conn.waiting[i].response.get();
    const std::size_t start = conn.out.size();
    append_response_frame(conn.out, response);
    const std::size_t payload = conn.out.size() - start - kHeaderBytes;
    if (payload > config_.max_payload) {
      // Roll the oversized frame back and answer with an error the
      // peer's decoder can actually accept.
      conn.out.resize(start);
      send_error(conn, conn.waiting[i].trace_id, "bad_request",
                 "response exceeds the frame size limit");
    } else {
      note_frame_sent(conn, conn.waiting[i].trace_id, payload);
    }
    conn.waiting.erase(conn.waiting.begin() +
                       static_cast<std::ptrdiff_t>(i));
    ++sent;
  }
  return sent;
}

void SocketServer::send_error(Connection& conn, std::uint64_t trace_id,
                              const char* error,
                              const std::string& message) {
  const std::size_t start = conn.out.size();
  append_error_frame(conn.out, trace_id, error, message);
  note_frame_sent(conn, trace_id, conn.out.size() - start - kHeaderBytes);
}

void SocketServer::note_frame_sent(Connection& conn, std::uint64_t trace_id,
                                   std::size_t payload_bytes) {
  frames_out_.fetch_add(1, std::memory_order_relaxed);
  NetStats::instance().frames_out.add(1);
  NetStats::instance().frame_bytes.observe(
      static_cast<double>(payload_bytes));

  observe::FlightEvent event;
  event.time = backend_.now();
  event.request_id = trace_id;
  event.batch_id = conn.id;
  event.flows = clip_u32(payload_bytes);
  event.kind = observe::EventKind::kFrameSent;
  backend_.frontend_recorder().record(event);
}

void SocketServer::flush(Connection& conn) {
  while (conn.out_pos < conn.out.size()) {
    const ssize_t n =
        ::send(conn.fd, conn.out.data() + conn.out_pos,
               conn.out.size() - conn.out_pos, MSG_NOSIGNAL);
    if (n > 0) {
      conn.out_pos += static_cast<std::size_t>(n);
      bytes_out_.fetch_add(static_cast<std::uint64_t>(n),
                           std::memory_order_relaxed);
      NetStats::instance().bytes_out.add(static_cast<std::uint64_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    conn.dead = true;
    return;
  }
  conn.out.clear();
  conn.out_pos = 0;
}

void SocketServer::close_connection(Connection& conn) {
  if (conn.fd < 0) return;
  ::close(conn.fd);
  conn.fd = -1;

  observe::FlightEvent event;
  event.time = backend_.now();
  event.batch_id = conn.id;
  event.flows = clip_u32(conn.frames_in);
  event.kind = observe::EventKind::kConnClosed;
  backend_.frontend_recorder().record(event);

  closed_.fetch_add(1, std::memory_order_relaxed);
  NetStats::instance().conns_closed.add(1);
}

void SocketServer::reap_closed() {
  bool changed = false;
  for (std::size_t i = 0; i < conns_.size();) {
    Connection& conn = conns_[i];
    const bool flushed = conn.out_pos >= conn.out.size();
    const bool should_close =
        conn.dead || (conn.closing && flushed) ||
        (conn.eof && flushed && conn.waiting.empty());
    if (!should_close) {
      ++i;
      continue;
    }
    close_connection(conn);
    conns_.erase(conns_.begin() + static_cast<std::ptrdiff_t>(i));
    changed = true;
  }
  if (changed) {
    open_.store(conns_.size(), std::memory_order_relaxed);
    NetStats::instance().connections_open.set(
        static_cast<double>(conns_.size()));
  }
}

std::string SocketServer::health_fragment() const {
  telemetry::JsonWriter json;
  json.begin_object();
  json.key("port");
  json.value(static_cast<std::uint64_t>(port_));
  json.key("open");
  json.value(static_cast<std::uint64_t>(
      open_.load(std::memory_order_relaxed)));
  json.key("opened");
  json.value(opened_.load(std::memory_order_relaxed));
  json.key("closed");
  json.value(closed_.load(std::memory_order_relaxed));
  json.key("frames_in");
  json.value(frames_in_.load(std::memory_order_relaxed));
  json.key("frames_out");
  json.value(frames_out_.load(std::memory_order_relaxed));
  json.key("protocol_errors");
  json.value(protocol_errors_.load(std::memory_order_relaxed));
  json.key("bytes_in");
  json.value(bytes_in_.load(std::memory_order_relaxed));
  json.key("bytes_out");
  json.value(bytes_out_.load(std::memory_order_relaxed));
  json.end_object();
  return std::move(json).str();
}

}  // namespace repro::serve::wire
