#include "serve/net/client.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "serve/clock.hpp"

namespace repro::serve::wire {

BlockingClient::BlockingClient(std::uint16_t port, std::size_t max_payload)
    : decoder_(max_payload) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw std::runtime_error(std::string("socket(): ") +
                             std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("connect(127.0.0.1:" + std::to_string(port) +
                             "): " + why);
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

BlockingClient::~BlockingClient() {
  if (fd_ >= 0) ::close(fd_);
}

void BlockingClient::send(const GenerateRequest& request,
                          double deadline_ms) {
  std::vector<std::uint8_t> out;
  append_request_frame(out, request, deadline_ms);
  send_raw(out.data(), out.size());
}

void BlockingClient::send_raw(const void* data, std::size_t n) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t w = ::send(fd_, bytes + sent, n - sent, MSG_NOSIGNAL);
    if (w > 0) {
      sent += static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    throw std::runtime_error(std::string("send(): ") +
                             std::strerror(errno));
  }
}

std::optional<Reply> BlockingClient::read_reply(double timeout_seconds) {
  const ClockFn now = steady_clock_fn();
  const double give_up = now() + timeout_seconds;
  for (;;) {
    Frame frame;
    const DecodeStatus status = decoder_.next(frame);
    if (status == DecodeStatus::kFrame) {
      Reply reply;
      if (frame.type == FrameType::kResponse) {
        reply.response = parse_response_payload(frame.payload);
        if (!reply.response) {
          throw std::runtime_error("malformed response payload");
        }
      } else if (frame.type == FrameType::kError) {
        reply.error = parse_error_payload(frame.payload);
        if (!reply.error) {
          throw std::runtime_error("malformed error payload");
        }
      } else {
        throw std::runtime_error("unexpected request frame from server");
      }
      return reply;
    }
    if (status != DecodeStatus::kNeedMore) {
      throw std::runtime_error(std::string("reply framing error: ") +
                               to_string(status));
    }
    if (eof_) return std::nullopt;

    const double remaining = give_up - now();
    if (remaining <= 0) return std::nullopt;
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, static_cast<int>(remaining * 1000.0) + 1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("poll(): ") +
                               std::strerror(errno));
    }
    if (ready == 0) return std::nullopt;  // timeout

    std::uint8_t buf[65536];
    const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n > 0) {
      decoder_.feed(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {
      eof_ = true;
      continue;  // drain whatever is already buffered
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    throw std::runtime_error(std::string("recv(): ") +
                             std::strerror(errno));
  }
}

std::optional<Reply> BlockingClient::call(const GenerateRequest& request,
                                          double deadline_ms,
                                          double timeout_seconds) {
  send(request, deadline_ms);
  return read_reply(timeout_seconds);
}

void BlockingClient::shutdown_writes() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

}  // namespace repro::serve::wire
