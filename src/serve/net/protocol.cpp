#include "serve/net/protocol.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>

#include "common/telemetry/export.hpp"
#include "serve/observe/inspect.hpp"

namespace repro::serve::wire {
namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

constexpr char kHexDigits[] = "0123456789abcdef";

void fnv_mix(std::uint64_t& h, const void* data, std::size_t n) noexcept {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= bytes[i];
    h *= kFnvPrime;
  }
}

void fnv_mix_u64(std::uint64_t& h, std::uint64_t v) noexcept {
  unsigned char le[8];
  for (int i = 0; i < 8; ++i) le[i] = static_cast<unsigned char>(v >> (8 * i));
  fnv_mix(h, le, sizeof le);
}

std::uint64_t double_bits(double v) noexcept {
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  return bits;
}

bool valid_frame_type(std::uint8_t type) noexcept {
  return type == static_cast<std::uint8_t>(FrameType::kRequest) ||
         type == static_cast<std::uint8_t>(FrameType::kResponse) ||
         type == static_cast<std::uint8_t>(FrameType::kError);
}

/// JSON number -> non-negative integer with an exactness check (JSON
/// numbers are doubles; 2.5 requests or 1e300 flows are malformed).
bool to_integer(double num, std::uint64_t max, std::uint64_t& out) {
  if (!(num >= 0) || num > static_cast<double>(max)) return false;
  if (num != std::floor(num)) return false;
  out = static_cast<std::uint64_t>(num);
  return true;
}

/// Accepts a u64 carried as either a decimal JSON string (bit-exact for
/// values above 2^53) or a plain JSON number.
bool parse_u64_field(const observe::JsonValue& v, std::uint64_t& out) {
  if (v.type == observe::JsonValue::Type::kNumber) {
    return to_integer(v.number, UINT64_MAX, out);
  }
  if (v.type != observe::JsonValue::Type::kString || v.string.empty() ||
      v.string.size() > 20) {
    return false;
  }
  std::uint64_t value = 0;
  for (char c : v.string) {
    if (c < '0' || c > '9') return false;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;
    value = value * 10 + digit;
  }
  out = value;
  return true;
}

bool parse_hex_u64(const std::string& s, std::uint64_t& out) {
  if (s.size() != 16) return false;
  std::uint64_t value = 0;
  for (char c : s) {
    int digit;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
    else return false;
    value = (value << 4) | static_cast<std::uint64_t>(digit);
  }
  out = value;
  return true;
}

bool parse_hex_bytes(const std::string& s, std::vector<std::uint8_t>& out) {
  if (s.size() % 2 != 0) return false;
  out.clear();
  out.reserve(s.size() / 2);
  for (std::size_t i = 0; i < s.size(); i += 2) {
    int hi, lo;
    const char a = s[i], b = s[i + 1];
    if (a >= '0' && a <= '9') hi = a - '0';
    else if (a >= 'a' && a <= 'f') hi = a - 'a' + 10;
    else return false;
    if (b >= '0' && b <= '9') lo = b - '0';
    else if (b >= 'a' && b <= 'f') lo = b - 'a' + 10;
    else return false;
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return true;
}

}  // namespace

const char* to_string(DecodeStatus status) noexcept {
  switch (status) {
    case DecodeStatus::kNeedMore: return "need_more";
    case DecodeStatus::kFrame: return "frame";
    case DecodeStatus::kBadMagic: return "bad_magic";
    case DecodeStatus::kBadVersion: return "bad_version";
    case DecodeStatus::kBadType: return "bad_type";
    case DecodeStatus::kBadFlags: return "bad_flags";
    case DecodeStatus::kOversized: return "oversized_frame";
  }
  return "unknown";
}

// --- FrameDecoder ---------------------------------------------------------

void FrameDecoder::feed(const void* data, std::size_t n) {
  if (poisoned() || n == 0) return;
  // Compact once the consumed prefix dominates the buffer.
  if (pos_ > 0 && (pos_ == buf_.size() || pos_ >= 65536)) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  buf_.insert(buf_.end(), bytes, bytes + n);
}

DecodeStatus FrameDecoder::next(Frame& out) {
  if (poisoned()) return poison_;
  const std::size_t avail = buf_.size() - pos_;
  if (avail < kHeaderBytes) return DecodeStatus::kNeedMore;
  const std::uint8_t* h = buf_.data() + pos_;
  // Validation order is part of the conformance surface: magic, then
  // version, then type, then flags, then length.
  if (h[0] != kFrameMagic) return poison_ = DecodeStatus::kBadMagic;
  if (h[1] != kProtocolVersion) return poison_ = DecodeStatus::kBadVersion;
  if (!valid_frame_type(h[2])) return poison_ = DecodeStatus::kBadType;
  if (h[3] != 0) return poison_ = DecodeStatus::kBadFlags;
  const std::uint32_t len = (static_cast<std::uint32_t>(h[4]) << 24) |
                            (static_cast<std::uint32_t>(h[5]) << 16) |
                            (static_cast<std::uint32_t>(h[6]) << 8) |
                            static_cast<std::uint32_t>(h[7]);
  // Oversized is rejected from the header alone — the payload is never
  // buffered.
  if (len > max_payload_) return poison_ = DecodeStatus::kOversized;
  if (avail < kHeaderBytes + len) return DecodeStatus::kNeedMore;
  out.type = static_cast<FrameType>(h[2]);
  out.payload.assign(reinterpret_cast<const char*>(h + kHeaderBytes), len);
  pos_ += kHeaderBytes + len;
  return DecodeStatus::kFrame;
}

// --- FrameWriter ----------------------------------------------------------

FrameWriter::FrameWriter(std::vector<std::uint8_t>& out, FrameType type)
    : out_(out), start_(out.size()) {
  const std::uint8_t header[kHeaderBytes] = {
      kFrameMagic, kProtocolVersion, static_cast<std::uint8_t>(type),
      0,           0,                0,
      0,           0};
  out_.insert(out_.end(), header, header + kHeaderBytes);
}

void FrameWriter::append(const char* s, std::size_t n) {
  out_.insert(out_.end(), reinterpret_cast<const std::uint8_t*>(s),
              reinterpret_cast<const std::uint8_t*>(s) + n);
}

void FrameWriter::comma() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!first_.empty()) {
    if (!first_.back()) append(",", 1);
    first_.back() = false;
  }
}

void FrameWriter::begin_object() {
  comma();
  append("{", 1);
  first_.push_back(true);
}

void FrameWriter::end_object() {
  append("}", 1);
  first_.pop_back();
}

void FrameWriter::begin_array() {
  comma();
  append("[", 1);
  first_.push_back(true);
}

void FrameWriter::end_array() {
  append("]", 1);
  first_.pop_back();
}

void FrameWriter::key(const char* name) {
  comma();
  append("\"", 1);
  append(name, std::strlen(name));  // keys are controlled literals
  append("\":", 2);
  pending_key_ = true;
}

void FrameWriter::value(const char* s) { value(std::string(s)); }

void FrameWriter::value(const std::string& s) {
  comma();
  const std::string quoted = telemetry::json_escape(s);
  append(quoted.data(), quoted.size());
}

void FrameWriter::value_u64(std::uint64_t v) {
  comma();
  char digits[24];
  const int len = std::snprintf(digits, sizeof digits, "%llu",
                                static_cast<unsigned long long>(v));
  append(digits, static_cast<std::size_t>(len));
}

void FrameWriter::value_i64(std::int64_t v) {
  comma();
  char digits[24];
  const int len = std::snprintf(digits, sizeof digits, "%lld",
                                static_cast<long long>(v));
  append(digits, static_cast<std::size_t>(len));
}

void FrameWriter::value_bool(bool v) {
  comma();
  if (v) {
    append("true", 4);
  } else {
    append("false", 5);
  }
}

void FrameWriter::value_hex_u64(std::uint64_t bits) {
  comma();
  char hex[18];
  hex[0] = '"';
  for (int i = 0; i < 16; ++i) {
    hex[1 + i] = kHexDigits[(bits >> (60 - 4 * i)) & 0xF];
  }
  hex[17] = '"';
  append(hex, sizeof hex);
}

void FrameWriter::value_hex_bytes(const std::uint8_t* data, std::size_t n) {
  comma();
  append("\"", 1);
  // Bulk path: hex needs no escaping, so write straight into the
  // out-buffer instead of round-tripping through json_escape.
  const std::size_t at = out_.size();
  out_.resize(at + 2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    out_[at + 2 * i] = static_cast<std::uint8_t>(kHexDigits[data[i] >> 4]);
    out_[at + 2 * i + 1] =
        static_cast<std::uint8_t>(kHexDigits[data[i] & 0xF]);
  }
  append("\"", 1);
}

void FrameWriter::value_decimal_string_u64(std::uint64_t v) {
  comma();
  char digits[24];
  const int len = std::snprintf(digits, sizeof digits, "\"%llu\"",
                                static_cast<unsigned long long>(v));
  append(digits, static_cast<std::size_t>(len));
}

std::size_t FrameWriter::end() {
  const std::size_t payload = out_.size() - start_ - kHeaderBytes;
  const auto len = static_cast<std::uint32_t>(payload);
  out_[start_ + 4] = static_cast<std::uint8_t>(len >> 24);
  out_[start_ + 5] = static_cast<std::uint8_t>(len >> 16);
  out_[start_ + 6] = static_cast<std::uint8_t>(len >> 8);
  out_[start_ + 7] = static_cast<std::uint8_t>(len);
  return payload;
}

// --- UTF-8 ----------------------------------------------------------------

bool valid_utf8(std::string_view s) noexcept {
  const auto* p = reinterpret_cast<const unsigned char*>(s.data());
  const std::size_t n = s.size();
  std::size_t i = 0;
  while (i < n) {
    const unsigned char c = p[i];
    if (c < 0x80) {
      ++i;
      continue;
    }
    std::size_t len;
    std::uint32_t cp, min_cp;
    if ((c & 0xE0) == 0xC0) {
      len = 2;
      cp = c & 0x1Fu;
      min_cp = 0x80;
    } else if ((c & 0xF0) == 0xE0) {
      len = 3;
      cp = c & 0x0Fu;
      min_cp = 0x800;
    } else if ((c & 0xF8) == 0xF0) {
      len = 4;
      cp = c & 0x07u;
      min_cp = 0x10000;
    } else {
      return false;  // bare continuation byte or 0xF8+ lead
    }
    if (i + len > n) return false;  // truncated sequence
    for (std::size_t k = 1; k < len; ++k) {
      const unsigned char cc = p[i + k];
      if ((cc & 0xC0) != 0x80) return false;
      cp = (cp << 6) | (cc & 0x3Fu);
    }
    if (cp < min_cp) return false;                    // overlong
    if (cp > 0x10FFFF) return false;                  // beyond Unicode
    if (cp >= 0xD800 && cp <= 0xDFFF) return false;   // surrogate
    i += len;
  }
  return true;
}

// --- Request payloads -----------------------------------------------------

void append_request_frame(std::vector<std::uint8_t>& out,
                          const GenerateRequest& request,
                          double deadline_ms) {
  FrameWriter frame(out, FrameType::kRequest);
  frame.begin_object();
  frame.key("model");
  frame.value(request.model);
  frame.key("class_id");
  frame.value_i64(request.class_id);
  frame.key("count");
  frame.value_u64(request.count);
  frame.key("seed");
  frame.value_decimal_string_u64(request.seed);
  frame.key("sampler");
  frame.value(request.sampler == diffusion::SamplerKind::kDdim   ? "ddim"
              : request.sampler == diffusion::SamplerKind::kDdpm ? "ddpm"
                                                                 : "distilled");
  frame.key("steps");
  frame.value_u64(request.ddim_steps);
  frame.key("precision");
  frame.value(request.precision == nn::Precision::kInt8 ? "int8" : "fp32");
  frame.key("priority");
  frame.value(request.priority == Priority::kHigh     ? "high"
              : request.priority == Priority::kNormal ? "normal"
                                                      : "low");
  if (deadline_ms >= 0) {
    frame.key("deadline_ms");
    frame.value_u64(static_cast<std::uint64_t>(deadline_ms));
  }
  frame.end_object();
  frame.end();
}

std::optional<WireRequest> parse_request_payload(const std::string& payload,
                                                 std::string& error) {
  if (!valid_utf8(payload)) {
    error = "payload is not valid UTF-8";
    return std::nullopt;
  }
  // parse_json rejects trailing garbage, so "junk after the document"
  // lands here too.
  const std::optional<observe::JsonValue> doc = observe::parse_json(payload);
  if (!doc) {
    error = "payload is not a well-formed JSON document";
    return std::nullopt;
  }
  if (!doc->is_object()) {
    error = "request payload must be a JSON object";
    return std::nullopt;
  }

  WireRequest out;
  if (const observe::JsonValue* v = doc->find("model")) {
    if (v->type != observe::JsonValue::Type::kString || v->string.empty()) {
      error = "field 'model' must be a non-empty string";
      return std::nullopt;
    }
    out.request.model = v->string;
  }
  if (const observe::JsonValue* v = doc->find("class_id")) {
    std::uint64_t n = 0;
    if (!to_integer(v->num_or(-1.0), 1u << 20, n)) {
      error = "field 'class_id' must be a small non-negative integer";
      return std::nullopt;
    }
    out.request.class_id = static_cast<int>(n);
  }
  if (const observe::JsonValue* v = doc->find("count")) {
    std::uint64_t n = 0;
    if (!to_integer(v->num_or(-1.0), 1u << 20, n)) {
      error = "field 'count' must be a small non-negative integer";
      return std::nullopt;
    }
    out.request.count = static_cast<std::size_t>(n);
  }
  if (const observe::JsonValue* v = doc->find("seed")) {
    if (!parse_u64_field(*v, out.request.seed)) {
      error = "field 'seed' must be a u64 (number or decimal string)";
      return std::nullopt;
    }
  }
  if (const observe::JsonValue* v = doc->find("sampler")) {
    const std::string& name = v->str_or("");
    if (name == "ddim") {
      out.request.sampler = diffusion::SamplerKind::kDdim;
    } else if (name == "ddpm") {
      out.request.sampler = diffusion::SamplerKind::kDdpm;
    } else if (name == "distilled") {
      out.request.sampler = diffusion::SamplerKind::kDistilled;
    } else {
      error = "field 'sampler' must be \"ddim\", \"ddpm\" or \"distilled\"";
      return std::nullopt;
    }
  }
  if (const observe::JsonValue* v = doc->find("precision")) {
    const std::string& name = v->str_or("");
    if (name == "fp32") {
      out.request.precision = nn::Precision::kFp32;
    } else if (name == "int8") {
      out.request.precision = nn::Precision::kInt8;
    } else {
      error = "field 'precision' must be \"fp32\" or \"int8\"";
      return std::nullopt;
    }
  }
  if (const observe::JsonValue* v = doc->find("steps")) {
    std::uint64_t n = 0;
    if (!to_integer(v->num_or(-1.0), 100000, n) || n == 0) {
      error = "field 'steps' must be a positive integer";
      return std::nullopt;
    }
    out.request.ddim_steps = static_cast<std::size_t>(n);
  }
  if (const observe::JsonValue* v = doc->find("priority")) {
    const std::string& name = v->str_or("");
    if (name == "high") {
      out.request.priority = Priority::kHigh;
    } else if (name == "normal") {
      out.request.priority = Priority::kNormal;
    } else if (name == "low") {
      out.request.priority = Priority::kLow;
    } else {
      error = "field 'priority' must be \"high\", \"normal\" or \"low\"";
      return std::nullopt;
    }
  }
  if (const observe::JsonValue* v = doc->find("deadline_ms")) {
    const double ms = v->num_or(-1.0);
    if (!(ms >= 0) || !(ms <= 1e12)) {
      error = "field 'deadline_ms' must be a non-negative number";
      return std::nullopt;
    }
    out.deadline_ms = ms;
  }
  return out;
}

// --- Response / error payloads --------------------------------------------

void append_response_frame(std::vector<std::uint8_t>& out,
                           const Response& response) {
  FrameWriter frame(out, FrameType::kResponse);
  frame.begin_object();
  frame.key("request_id");
  frame.value_u64(response.request_id);
  if (response.status == ResponseStatus::kCancelled) {
    frame.key("status");
    frame.value("cancelled");
    frame.key("reason");
    frame.value(to_string(response.cancel_reason));
    frame.end_object();
    frame.end();
    return;
  }
  frame.key("status");
  frame.value("ok");
  frame.key("model_version");
  frame.value(response.model_version);
  frame.key("cache_hit");
  frame.value_bool(response.cache_hit);
  frame.key("batch_flows");
  frame.value_u64(response.batch_flows);
  frame.key("flows");
  frame.begin_array();
  for (const repro::net::Flow& flow : response.flows) {
    frame.begin_object();
    frame.key("label");
    frame.value_i64(flow.label);
    frame.key("packets");
    frame.begin_array();
    for (const repro::net::Packet& packet : flow.packets) {
      const std::vector<std::uint8_t> datagram = packet.serialize();
      frame.begin_object();
      frame.key("ts");
      frame.value_hex_u64(double_bits(packet.timestamp));
      frame.key("bytes");
      frame.value_hex_bytes(datagram.data(), datagram.size());
      frame.end_object();
    }
    frame.end_array();
    frame.end_object();
  }
  frame.end_array();
  frame.end_object();
  frame.end();
}

void append_error_frame(std::vector<std::uint8_t>& out,
                        std::uint64_t request_id, const char* error,
                        const std::string& message) {
  FrameWriter frame(out, FrameType::kError);
  frame.begin_object();
  frame.key("request_id");
  frame.value_u64(request_id);
  frame.key("error");
  frame.value(error);
  frame.key("message");
  frame.value(message);
  frame.end_object();
  frame.end();
}

// --- Client-side decoding -------------------------------------------------

std::optional<WireResponse> parse_response_payload(
    const std::string& payload) {
  const std::optional<observe::JsonValue> doc = observe::parse_json(payload);
  if (!doc || !doc->is_object()) return std::nullopt;

  WireResponse out;
  if (const observe::JsonValue* v = doc->find("request_id")) {
    if (!parse_u64_field(*v, out.request_id)) return std::nullopt;
  }
  const observe::JsonValue* status = doc->find("status");
  if (!status) return std::nullopt;
  out.status = status->str_or("");
  if (out.status == "cancelled") {
    if (const observe::JsonValue* v = doc->find("reason")) {
      out.reason = v->str_or("");
    }
    return out;
  }
  if (out.status != "ok") return std::nullopt;
  if (const observe::JsonValue* v = doc->find("model_version")) {
    out.model_version = v->str_or("");
  }
  if (const observe::JsonValue* v = doc->find("cache_hit")) {
    out.cache_hit =
        v->type == observe::JsonValue::Type::kBool && v->boolean;
  }
  if (const observe::JsonValue* v = doc->find("batch_flows")) {
    if (!parse_u64_field(*v, out.batch_flows)) return std::nullopt;
  }
  const observe::JsonValue* flows = doc->find("flows");
  if (!flows || !flows->is_array()) return std::nullopt;
  out.flows.reserve(flows->array.size());
  for (const observe::JsonValue& flow_doc : flows->array) {
    if (!flow_doc.is_object()) return std::nullopt;
    WireFlow flow;
    if (const observe::JsonValue* v = flow_doc.find("label")) {
      const double num = v->num_or(-1e18);
      if (num != std::floor(num) || num < -2e9 || num > 2e9) {
        return std::nullopt;
      }
      flow.label = static_cast<int>(num);
    }
    const observe::JsonValue* packets = flow_doc.find("packets");
    if (!packets || !packets->is_array()) return std::nullopt;
    flow.packets.reserve(packets->array.size());
    for (const observe::JsonValue& packet_doc : packets->array) {
      if (!packet_doc.is_object()) return std::nullopt;
      WirePacket packet;
      const observe::JsonValue* ts = packet_doc.find("ts");
      const observe::JsonValue* bytes = packet_doc.find("bytes");
      if (!ts || ts->type != observe::JsonValue::Type::kString ||
          !parse_hex_u64(ts->string, packet.ts_bits)) {
        return std::nullopt;
      }
      if (!bytes || bytes->type != observe::JsonValue::Type::kString ||
          !parse_hex_bytes(bytes->string, packet.bytes)) {
        return std::nullopt;
      }
      flow.packets.push_back(std::move(packet));
    }
    out.flows.push_back(std::move(flow));
  }
  return out;
}

std::optional<WireError> parse_error_payload(const std::string& payload) {
  const std::optional<observe::JsonValue> doc = observe::parse_json(payload);
  if (!doc || !doc->is_object()) return std::nullopt;
  WireError out;
  if (const observe::JsonValue* v = doc->find("request_id")) {
    if (!parse_u64_field(*v, out.request_id)) return std::nullopt;
  }
  const observe::JsonValue* error = doc->find("error");
  if (!error || error->type != observe::JsonValue::Type::kString) {
    return std::nullopt;
  }
  out.error = error->string;
  if (const observe::JsonValue* v = doc->find("message")) {
    out.message = v->str_or("");
  }
  return out;
}

// --- Content hashing ------------------------------------------------------

std::uint64_t hash_flows(const std::vector<repro::net::Flow>& flows) {
  std::uint64_t h = kFnvOffset;
  fnv_mix_u64(h, flows.size());
  for (const repro::net::Flow& flow : flows) {
    fnv_mix_u64(h, static_cast<std::uint64_t>(
                       static_cast<std::uint32_t>(flow.label)));
    fnv_mix_u64(h, flow.packets.size());
    for (const repro::net::Packet& packet : flow.packets) {
      const std::vector<std::uint8_t> datagram = packet.serialize();
      fnv_mix_u64(h, double_bits(packet.timestamp));
      fnv_mix_u64(h, datagram.size());
      fnv_mix(h, datagram.data(), datagram.size());
    }
  }
  return h;
}

std::uint64_t hash_wire_flows(const std::vector<WireFlow>& flows) {
  std::uint64_t h = kFnvOffset;
  fnv_mix_u64(h, flows.size());
  for (const WireFlow& flow : flows) {
    fnv_mix_u64(h, static_cast<std::uint64_t>(
                       static_cast<std::uint32_t>(flow.label)));
    fnv_mix_u64(h, flow.packets.size());
    for (const WirePacket& packet : flow.packets) {
      fnv_mix_u64(h, packet.ts_bits);
      fnv_mix_u64(h, packet.bytes.size());
      fnv_mix(h, packet.bytes.data(), packet.bytes.size());
    }
  }
  return h;
}

}  // namespace repro::serve::wire
