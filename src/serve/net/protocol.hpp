// Wire protocol of the socket front-end: length-prefixed JSON frames.
//
// Frame layout (byte-exact; locked in by tests/serve_net_test.cpp):
//
//   offset  size  field
//   0       1     magic    0xC7
//   1       1     version  0x01
//   2       1     type     1 = request, 2 = response, 3 = error
//   3       1     flags    must be 0 (reserved)
//   4       4     length   payload bytes, big-endian u32
//   8       len   payload  UTF-8 JSON document
//
// Error handling is two-tier. FRAMING errors (bad magic / version /
// type / flags, oversized length) mean byte synchronization with the
// peer is lost: the decoder poisons itself, the server answers with one
// typed `bad_request` error frame and closes the connection. PAYLOAD
// errors (invalid UTF-8, malformed JSON, junk after the document, bad
// field types) keep framing intact: the server answers with a typed
// error frame and the connection stays open.
//
// Error frames carry the same reason strings as serve::RejectReason
// (`to_string(reason)`), so a queue_full/unknown_model/bad_request
// reject looks identical whether it was observed in-process from
// SubmitResult or over the wire.
//
// Determinism on the wire: packet timestamps travel as the 16-hex-digit
// bit pattern of their double (JSON number formatting is not guaranteed
// to round-trip bits) and packet bytes as the hex of
// Packet::serialize(), so a decoded response is bit-identical to the
// in-process Response it was built from.
//
// Namespace note: this layer is `serve::wire`, not `serve::net`,
// because a nested `net` namespace would shadow `repro::net` (flows,
// packets) inside it.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "serve/request.hpp"

namespace repro::serve::wire {

inline constexpr std::uint8_t kFrameMagic = 0xC7;
inline constexpr std::uint8_t kProtocolVersion = 0x01;
inline constexpr std::size_t kHeaderBytes = 8;
/// Default payload-size ceiling (admission control for memory).
inline constexpr std::size_t kDefaultMaxPayload = std::size_t{8} << 20;

enum class FrameType : std::uint8_t {
  kRequest = 1,
  kResponse = 2,
  kError = 3,
};

struct Frame {
  FrameType type = FrameType::kRequest;
  std::string payload;
};

/// Decoder verdicts. kNeedMore/kFrame are progress; everything else is
/// a framing error that poisons the decoder (sync with the peer is
/// gone — the connection must close).
enum class DecodeStatus {
  kNeedMore,
  kFrame,
  kBadMagic,
  kBadVersion,
  kBadType,
  kBadFlags,
  kOversized,
};

const char* to_string(DecodeStatus status) noexcept;

/// Incremental frame decoder over an arbitrary byte stream: feed() any
/// split of the input (single bytes, torn headers, coalesced frames)
/// and next() yields the same frame sequence.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_payload = kDefaultMaxPayload)
      : max_payload_(max_payload) {}

  void feed(const void* data, std::size_t n);

  /// Extracts the next complete frame into `out`. Returns kFrame on
  /// success, kNeedMore when the buffer holds only a partial frame, or
  /// a poisoning framing error. Once poisoned, always returns the same
  /// error and consumes nothing.
  DecodeStatus next(Frame& out);

  bool poisoned() const noexcept {
    return poison_ != DecodeStatus::kNeedMore;
  }
  std::size_t buffered() const noexcept { return buf_.size() - pos_; }

 private:
  std::size_t max_payload_;
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;  ///< consumed prefix (compacted lazily)
  DecodeStatus poison_ = DecodeStatus::kNeedMore;
};

/// Streaming frame writer: builds the JSON payload DIRECTLY in the
/// caller's buffer (the connection's out-buffer), so a response with
/// thousands of packets is serialized exactly once — reserve the
/// 8-byte header, append payload bytes, patch the length in end().
class FrameWriter {
 public:
  FrameWriter(std::vector<std::uint8_t>& out, FrameType type);

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();
  void key(const char* name);
  void value(const char* s);
  void value(const std::string& s);
  void value_u64(std::uint64_t v);
  void value_i64(std::int64_t v);
  void value_bool(bool v);
  /// The 16-hex-digit bit pattern of a u64, as a JSON string.
  void value_hex_u64(std::uint64_t bits);
  /// Bytes hex-encoded (2 chars per byte), as a JSON string.
  void value_hex_bytes(const std::uint8_t* data, std::size_t n);
  /// A u64 as a decimal JSON STRING — seeds may exceed 2^53, which a
  /// JSON number (double) cannot carry bit-exactly.
  void value_decimal_string_u64(std::uint64_t v);

  /// Patches the header's length field. Returns the payload size.
  std::size_t end();

  /// Offset of this frame's header in the output buffer (lets a caller
  /// roll back an oversized frame and emit an error frame instead).
  std::size_t start() const noexcept { return start_; }

 private:
  void comma();
  void append(const char* s, std::size_t n);

  std::vector<std::uint8_t>& out_;
  std::size_t start_;
  std::vector<bool> first_;
  bool pending_key_ = false;
};

/// Strict UTF-8 validation (rejects overlongs, surrogates, > U+10FFFF).
bool valid_utf8(std::string_view s) noexcept;

// --- Request payloads -----------------------------------------------------

/// A decoded request frame. deadline_ms is RELATIVE (a client cannot
/// know the server's clock); < 0 means no deadline. The server converts
/// it to an absolute GenerateRequest::deadline at decode time.
struct WireRequest {
  GenerateRequest request;
  double deadline_ms = -1.0;
};

void append_request_frame(std::vector<std::uint8_t>& out,
                          const GenerateRequest& request,
                          double deadline_ms = -1.0);

/// Validates UTF-8 + JSON + field types; unknown keys are ignored
/// (forward compatibility). On failure returns nullopt and fills
/// `error` with a one-line reason (surfaced in the error frame).
std::optional<WireRequest> parse_request_payload(const std::string& payload,
                                                 std::string& error);

// --- Response / error payloads --------------------------------------------

void append_response_frame(std::vector<std::uint8_t>& out,
                           const Response& response);

void append_error_frame(std::vector<std::uint8_t>& out,
                        std::uint64_t request_id, const char* error,
                        const std::string& message);

// --- Client-side decoding -------------------------------------------------

struct WirePacket {
  std::uint64_t ts_bits = 0;  ///< bit pattern of the double timestamp
  std::vector<std::uint8_t> bytes;  ///< serialized IP datagram
};

struct WireFlow {
  int label = -1;
  std::vector<WirePacket> packets;
};

struct WireResponse {
  std::uint64_t request_id = 0;
  std::string status;  ///< "ok" | "cancelled"
  std::string reason;  ///< cancel reason when cancelled
  std::string model_version;
  bool cache_hit = false;
  std::uint64_t batch_flows = 0;
  std::vector<WireFlow> flows;
};

std::optional<WireResponse> parse_response_payload(
    const std::string& payload);

struct WireError {
  std::uint64_t request_id = 0;
  std::string error;    ///< RejectReason string, e.g. "queue_full"
  std::string message;  ///< human-readable detail
};

std::optional<WireError> parse_error_payload(const std::string& payload);

// --- Content hashing ------------------------------------------------------
//
// One FNV-1a mix over the wire-visible content of a flow set — label,
// per-packet timestamp bits, serialized packet bytes, with all counts
// mixed in. hash_flows (library side) and hash_wire_flows (decoded
// side) agree iff the served bytes round-tripped bit-exactly; this is
// the equality the lane/socket determinism tests assert.

std::uint64_t hash_flows(const std::vector<repro::net::Flow>& flows);
std::uint64_t hash_wire_flows(const std::vector<WireFlow>& flows);

}  // namespace repro::serve::wire
