// SocketServer: the poll()-driven TCP front-end over a ShardedService.
//
// One event loop owns every connection (accept, read, decode, submit,
// harvest, write) and never blocks on model work: decoded requests are
// routed to their shard with submit_traced() and the returned futures
// are polled with zero-timeout waits each loop turn, so a slow batch on
// one shard never stalls reads on other connections. The loop can be
// driven cooperatively (tests call poll_once()) or by a
// BackgroundWorker (start()/stop(), used by `repro_served --listen`) —
// this file deliberately creates no thread of its own (repro_lint
// RL002).
//
// Responses are streamed: append_response_frame() serializes flow
// payloads DIRECTLY into the connection's out-buffer, which drains via
// non-blocking send() as the socket accepts bytes — a large response is
// serialized exactly once and never duplicated into an intermediate
// payload string.
//
// Error policy mirrors the protocol header: framing errors answer one
// typed `bad_request` frame and close the connection (byte sync is
// lost); payload/admission errors answer a typed frame and keep it
// open. Every reject reason a caller could see in-process from
// SubmitResult crosses the wire with the same to_string(RejectReason)
// spelling.
//
// Observability: the server mints each request's trace id AT FRAME
// DECODE (before admission) and records conn-scoped flight events —
// conn_opened / frame_decoded / frame_sent / conn_closed — into the
// backend's frontend recorder, so a merged flight dump shows the full
// wire-to-model timeline. health_fragment() plugs into
// ShardedService::health_json() as its "connections" section.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "serve/net/protocol.hpp"
#include "serve/shard.hpp"

namespace repro::serve::wire {

struct ServerConfig {
  /// Port to bind on 127.0.0.1; 0 asks the kernel for an ephemeral
  /// port (tests) — port() reports the actual one. Tools default this
  /// from REPRO_SERVE_PORT (see common/env.hpp kEnvServePort).
  std::uint16_t port = 0;
  int backlog = 64;
  std::size_t max_connections = 64;
  /// Payload ceiling for both directions: inbound frames above it are
  /// rejected from the header alone; an outbound response that would
  /// exceed it is rolled back and replaced by an error frame.
  std::size_t max_payload = kDefaultMaxPayload;
  /// Seconds one background loop turn blocks in poll().
  double poll_wait = 0.002;
};

class SocketServer {
 public:
  /// Binds and listens immediately; throws std::runtime_error on
  /// socket/bind failure. Installs itself as the backend's transport
  /// health supplier (uninstalled in the destructor).
  SocketServer(ShardedService& backend, ServerConfig config);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// The bound port (== config.port unless that was 0).
  std::uint16_t port() const noexcept { return port_; }

  /// One event-loop turn: accept, read + decode + submit, harvest
  /// ready responses, flush writes, reap closed connections. Blocks in
  /// poll() for at most timeout_ms. Returns frames processed (in +
  /// out). Single-consumer, like TraceService::pump(): call it from
  /// one thread OR use start()/stop(), never both.
  std::size_t poll_once(int timeout_ms);

  /// Starts/stops the background loop (idempotent).
  void start();
  void stop();

  std::size_t open_connections() const noexcept {
    return open_.load(std::memory_order_relaxed);
  }

  /// JSON object for health_json()'s "connections" section:
  /// {"port","open","opened","closed","frames_in","frames_out",
  ///  "protocol_errors","bytes_in","bytes_out"}.
  std::string health_fragment() const;

 private:
  struct PendingReply {
    std::uint64_t trace_id = 0;
    std::shared_future<Response> response;
  };

  struct Connection {
    int fd = -1;
    std::uint64_t id = 0;
    FrameDecoder decoder;
    std::vector<std::uint8_t> out;
    std::size_t out_pos = 0;  ///< flushed prefix of `out`
    std::vector<PendingReply> waiting;
    std::uint64_t frames_in = 0;
    bool eof = false;      ///< peer half-closed; reap once work drains
    bool closing = false;  ///< framing error; reap once `out` flushes
    bool dead = false;     ///< transport error; reap immediately
  };

  std::size_t accept_ready();
  std::size_t read_ready(Connection& conn);
  std::size_t process_frames(Connection& conn);
  void handle_frame(Connection& conn, const Frame& frame);
  std::size_t harvest(Connection& conn);
  void flush(Connection& conn);
  void send_error(Connection& conn, std::uint64_t trace_id,
                  const char* error, const std::string& message);
  void note_frame_sent(Connection& conn, std::uint64_t trace_id,
                       std::size_t payload_bytes);
  void close_connection(Connection& conn);
  void reap_closed();

  ShardedService& backend_;
  ServerConfig config_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::uint64_t next_conn_id_ = 1;
  std::vector<Connection> conns_;
  std::unique_ptr<BackgroundWorker> worker_;

  // Health counters (atomic: the loop writes, health readers are any
  // thread). The same tallies also feed the serve.net.* registry
  // metrics, which are process-global like every ServiceStats counter.
  std::atomic<std::size_t> open_{0};
  std::atomic<std::uint64_t> opened_{0};
  std::atomic<std::uint64_t> closed_{0};
  std::atomic<std::uint64_t> frames_in_{0};
  std::atomic<std::uint64_t> frames_out_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
  std::atomic<std::uint64_t> bytes_in_{0};
  std::atomic<std::uint64_t> bytes_out_{0};
};

}  // namespace repro::serve::wire
