#include "serve/queue.hpp"

#include <algorithm>

namespace repro::serve {

const char* to_string(RejectReason reason) noexcept {
  switch (reason) {
    case RejectReason::kQueueFull: return "queue_full";
    case RejectReason::kDeadlineExpired: return "deadline_expired";
    case RejectReason::kUnknownModel: return "unknown_model";
    case RejectReason::kUnknownClass: return "unknown_class";
    case RejectReason::kBadRequest: return "bad_request";
    case RejectReason::kShuttingDown: return "shutting_down";
  }
  return "unknown";
}

RequestQueue::RequestQueue(std::size_t capacity) : capacity_(capacity) {}

std::optional<RejectReason> RequestQueue::try_push(Pending&& p) {
  const auto lane = static_cast<std::size_t>(p.request.priority);
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (const auto& q : lanes_) total += q.size();
  if (total >= capacity_) return RejectReason::kQueueFull;
  lanes_[std::min(lane, kPriorityLanes - 1)].push_back(std::move(p));
  return std::nullopt;
}

std::optional<Pending> RequestQueue::pop_head() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& q : lanes_) {
    if (q.empty()) continue;
    Pending p = std::move(q.front());
    q.pop_front();
    return p;
  }
  return std::nullopt;
}

std::vector<Pending> RequestQueue::extract_matching(
    const std::function<bool(const Pending&)>& pred, std::size_t max) {
  std::vector<Pending> out;
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& q : lanes_) {
    for (auto it = q.begin(); it != q.end() && out.size() < max;) {
      if (pred(*it)) {
        out.push_back(std::move(*it));
        it = q.erase(it);
      } else {
        ++it;
      }
    }
  }
  return out;
}

std::vector<Pending> RequestQueue::sweep_expired(double now,
                                                 std::size_t max) {
  return extract_matching(
      [now](const Pending& p) { return p.request.deadline < now; }, max);
}

std::array<std::size_t, kPriorityLanes> RequestQueue::lane_sizes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::array<std::size_t, kPriorityLanes> sizes{};
  for (std::size_t i = 0; i < kPriorityLanes; ++i) {
    sizes[i] = lanes_[i].size();
  }
  return sizes;
}

std::size_t RequestQueue::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (const auto& q : lanes_) total += q.size();
  return total;
}

double RequestQueue::oldest_enqueue_time() const {
  std::lock_guard<std::mutex> lock(mutex_);
  double oldest = kNoDeadline;
  for (const auto& q : lanes_) {
    for (const auto& p : q) oldest = std::min(oldest, p.enqueue_time);
  }
  return oldest;
}

}  // namespace repro::serve
