// Service clock: a monotonic seconds source injected into the serving
// layer. All deadline/wait logic takes time as a plain double from a
// ClockFn, so tests drive a fake clock and the daemon installs the real
// one. This file (clock.{hpp,cpp}) is the ONLY serve/ translation unit
// allowed to read a real clock (repro_lint RL006 exemption): generated
// trace bits must never depend on wall time, only scheduling does.
#pragma once

#include <functional>

namespace repro::serve {

/// Monotonic time in seconds from an arbitrary epoch.
using ClockFn = std::function<double()>;

/// The real service clock (std::chrono::steady_clock).
ClockFn steady_clock_fn();

}  // namespace repro::serve
