// ShardedService: N worker lanes behind one admission surface.
//
// Each shard is a full TraceService — its own bounded RequestQueue,
// BatchScheduler, ResultCache, SLO tracker, flight recorder, and
// BackgroundWorker — all fronting the SAME ModelRegistry. Requests are
// routed by a consistent-hash ring over (model, class):
//
//   shard = ring.shard_of(fnv1a64(model + ':' + class_id))
//
// Routing by (model, class) has two consequences the serving contract
// depends on. First, a BatchKey is (model, class, sampler, steps), so
// every request that COULD coalesce into one model call lands on the
// same shard — sharding never splits a batchable population. Second,
// the per-shard ResultCache stays exclusive: a (model, class) pair is
// cached on exactly one shard, so N lanes give N x the aggregate cache
// capacity with zero duplication and no cross-shard invalidation.
//
// Determinism: per-flow RNG streams are forked from (request.seed,
// flow_index) inside the shard's batched model call, so served bytes
// are independent of which shard ran the batch, how requests were
// grouped, and the lane count — a response is bit-identical to the
// direct library call at REPRO_SERVE_LANES=1, 2, or 8, in-process or
// over the socket (locked in by tests/serve_shard_test.cpp).
//
// Observability: all shards share one trace-id and one batch-id
// allocator (injected through ServiceConfig::id_source /
// batch_id_source), so ids stay unique across the fleet and
// flight_dump_json() can merge the frontend recorder (connection/frame
// events from the socket server) with every shard's ring into one
// time-ordered dump that repro_trace_inspect reconstructs end to end.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "serve/service.hpp"

namespace repro::serve {

/// FNV-1a over "model:class" — the routing hash. Exposed so tests (and
/// DESIGN.md's shard-hash definition) can pin it down.
std::uint64_t shard_key_hash(const std::string& model,
                             int class_id) noexcept;

/// Consistent-hash ring: `vnodes` points per shard on a u64 circle;
/// a key routes to the first point clockwise from its hash. Adding or
/// removing one shard moves only ~1/shards of the key space, keeping
/// per-shard result caches warm across lane-count changes.
class ShardRing {
 public:
  ShardRing(std::size_t shards, std::size_t vnodes);

  std::size_t shard_of(const std::string& model, int class_id) const;
  std::size_t shards() const noexcept { return shards_; }

 private:
  std::size_t shards_;
  /// (point hash, shard) sorted by hash.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> points_;
};

struct ShardedConfig {
  /// Worker lanes (= shards). Tools/benches default this from
  /// REPRO_SERVE_LANES (see common/env.hpp kEnvServeLanes).
  std::size_t lanes = 1;
  /// Ring points per shard; more points = smoother key spread.
  std::size_t vnodes = 16;
  /// Template for every shard (queue capacity, batch policy, and cache
  /// capacity are PER SHARD). id_source/batch_id_source are replaced
  /// with shared allocators.
  ServiceConfig service;
};

class ShardedService {
 public:
  ShardedService(ModelRegistry& registry, ShardedConfig config);

  ShardedService(const ShardedService&) = delete;
  ShardedService& operator=(const ShardedService&) = delete;

  /// Routes by (model, class) and submits to the owning shard.
  SubmitResult submit(const GenerateRequest& request);

  /// submit() with a pre-minted trace id (socket front-end).
  SubmitResult submit_traced(const GenerateRequest& request,
                             std::uint64_t trace_id);

  /// Mints a trace id from the fleet-shared allocator.
  std::uint64_t mint_trace_id() noexcept {
    return id_source_->fetch_add(1, std::memory_order_relaxed);
  }

  std::size_t shard_of(const std::string& model, int class_id) const {
    return ring_.shard_of(model, class_id);
  }
  std::size_t lanes() const noexcept { return shards_.size(); }
  TraceService& shard(std::size_t i) { return *shards_[i]; }

  /// Cooperative drive: one pump per shard (each reads its own fresh
  /// per-sweep `now`). Returns total requests completed.
  std::size_t pump();

  /// Drains every shard's queue; returns total requests completed.
  std::size_t drain();

  /// Starts/stops one BackgroundWorker per shard.
  void start();
  void stop();

  /// Refuse all future submissions with kShuttingDown (every shard).
  void close() noexcept;

  std::size_t pending() const;

  /// Current service-clock time (the socket front-end stamps its
  /// conn/frame events from the same clock the shards use, so merged
  /// timelines are ordered on one axis).
  double now() const { return clock_(); }

  /// Frontend recorder for connection/frame events (the socket server
  /// records into this one; shard recorders hold the service events).
  observe::FlightRecorder& frontend_recorder() noexcept {
    return frontend_;
  }

  /// Frontend + all shard events merged, stably sorted by timestamp.
  std::vector<observe::FlightEvent> merged_events() const;

  /// Merged dump in the FlightRecorder::dump_json format (capacity /
  /// recorded / overwritten are summed across recorders).
  std::string flight_dump_json() const;

  /// Transport health fragment supplier (a JSON object string); the
  /// socket server installs one so health_json() can report open
  /// connections and frame counters.
  void set_transport_health(std::function<std::string()> fn) {
    transport_health_ = std::move(fn);
  }

  /// Fleet health: worst-lane status, aggregate request counters, a
  /// per-shard section (queue depth, per-instance counters, SLO
  /// status), and — when a socket server is attached — a connections
  /// section from the transport.
  std::string health_json() const;

  const ShardedConfig& config() const noexcept { return config_; }

 private:
  ShardedConfig config_;
  ShardRing ring_;
  std::shared_ptr<std::atomic<std::uint64_t>> id_source_;
  std::shared_ptr<std::atomic<std::uint64_t>> batch_id_source_;
  std::vector<std::unique_ptr<TraceService>> shards_;
  observe::FlightRecorder frontend_;
  ClockFn clock_;
  double start_time_;
  std::function<std::string()> transport_health_;
};

}  // namespace repro::serve
