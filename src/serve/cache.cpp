#include "serve/cache.hpp"

#include "common/telemetry/trace.hpp"

namespace repro::serve {
namespace {

/// Flat string encoding of the key (map-friendly; '\x1f' separates the
/// version string from the numeric fields so versions cannot collide
/// with each other's suffixes).
std::string encode(const CacheKey& key) {
  std::string out = key.model_version;
  out.push_back('\x1f');
  out += std::to_string(key.class_id);
  out.push_back(':');
  out += std::to_string(key.seed);
  out.push_back(':');
  out += std::to_string(static_cast<int>(key.sampler));
  out.push_back(':');
  out += std::to_string(key.steps);
  out.push_back(':');
  out += std::to_string(static_cast<int>(key.precision));
  out.push_back(':');
  out += std::to_string(key.count);
  return out;
}

}  // namespace

CacheKey cache_key_of(const GenerateRequest& request,
                      const std::string& model_version) {
  return CacheKey{model_version,    request.class_id,  request.seed,
                  request.sampler,  request.ddim_steps, request.precision,
                  request.count};
}

ResultCache::ResultCache(std::size_t capacity) : capacity_(capacity) {}

std::optional<std::vector<net::Flow>> ResultCache::get(const CacheKey& key) {
  if (capacity_ == 0) return std::nullopt;
  REPRO_SPAN("serve.cache.get");
  const std::string k = encode(key);
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(k);
  if (it == index_.end()) return std::nullopt;
  lru_.splice(lru_.begin(), lru_, it->second);  // promote
  return it->second->second;
}

void ResultCache::put(const CacheKey& key, std::vector<net::Flow> flows) {
  if (capacity_ == 0) return;
  REPRO_SPAN("serve.cache.put");
  const std::string k = encode(key);
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(k);
  if (it != index_.end()) {
    it->second->second = std::move(flows);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(k, std::move(flows));
  index_[k] = lru_.begin();
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

std::size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

}  // namespace repro::serve
