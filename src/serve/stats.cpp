#include "serve/stats.hpp"

#include "common/contracts.hpp"

namespace repro::serve {
namespace {

std::vector<double> batch_size_bounds() {
  // 1, 2, 4, ... 256 flows per model call.
  std::vector<double> bounds;
  for (double b = 1.0; b <= 256.0; b *= 2.0) bounds.push_back(b);
  return bounds;
}

telemetry::Registry& reg() { return telemetry::Registry::instance(); }

// Lane metric names are spelled out as literals (rather than assembled
// at runtime) so the repro_lint serve-prefix rule can see every name
// this translation unit registers.
LaneStats make_lane(std::size_t index) {
  switch (index) {
    case 0:
      return LaneStats{reg().counter("serve.lane0.admitted"),
                       reg().counter("serve.lane0.completed"),
                       reg().counter("serve.lane0.cancelled"),
                       reg().gauge("serve.lane0.queue_depth"),
                       reg().histogram("serve.lane0.queue_wait_seconds"),
                       reg().histogram("serve.lane0.latency_seconds")};
    case 1:
      return LaneStats{reg().counter("serve.lane1.admitted"),
                       reg().counter("serve.lane1.completed"),
                       reg().counter("serve.lane1.cancelled"),
                       reg().gauge("serve.lane1.queue_depth"),
                       reg().histogram("serve.lane1.queue_wait_seconds"),
                       reg().histogram("serve.lane1.latency_seconds")};
    default:
      return LaneStats{reg().counter("serve.lane2.admitted"),
                       reg().counter("serve.lane2.completed"),
                       reg().counter("serve.lane2.cancelled"),
                       reg().gauge("serve.lane2.queue_depth"),
                       reg().histogram("serve.lane2.queue_wait_seconds"),
                       reg().histogram("serve.lane2.latency_seconds")};
  }
}

}  // namespace

ServiceStats::ServiceStats()
    : submitted(reg().counter("serve.requests.submitted")),
      accepted(reg().counter("serve.requests.accepted")),
      rejected_full(reg().counter("serve.requests.rejected_queue_full")),
      rejected_invalid(reg().counter("serve.requests.rejected_invalid")),
      cancelled_deadline(reg().counter("serve.requests.cancelled_deadline")),
      completed(reg().counter("serve.requests.completed")),
      flows_served(reg().counter("serve.flows.served")),
      cache_hits(reg().counter("serve.cache.hits")),
      cache_misses(reg().counter("serve.cache.misses")),
      batches(reg().counter("serve.batch.dispatched")),
      queue_depth(reg().gauge("serve.queue.depth")),
      batch_size(reg().histogram("serve.batch.size", batch_size_bounds())),
      queue_wait(reg().histogram("serve.latency.queue_wait_seconds")),
      latency(reg().histogram("serve.latency.total_seconds")),
      lane{make_lane(0), make_lane(1), make_lane(2)},
      rejects_{&reg().counter("serve.rejects.queue_full"),
               &reg().counter("serve.rejects.deadline_expired"),
               &reg().counter("serve.rejects.unknown_model"),
               &reg().counter("serve.rejects.unknown_class"),
               &reg().counter("serve.rejects.bad_request"),
               &reg().counter("serve.rejects.shutting_down")} {}

telemetry::Counter& ServiceStats::reject_reason(RejectReason reason) {
  const auto index = static_cast<std::size_t>(reason);
  REPRO_REQUIRE(index < rejects_.size(), "serve: unknown reject reason");
  return *rejects_[index];
}

}  // namespace repro::serve
