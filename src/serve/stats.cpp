#include "serve/stats.hpp"

namespace repro::serve {
namespace {

std::vector<double> batch_size_bounds() {
  // 1, 2, 4, ... 256 flows per model call.
  std::vector<double> bounds;
  for (double b = 1.0; b <= 256.0; b *= 2.0) bounds.push_back(b);
  return bounds;
}

}  // namespace

ServiceStats::ServiceStats()
    : submitted(telemetry::Registry::instance().counter(
          "serve.requests.submitted")),
      accepted(telemetry::Registry::instance().counter(
          "serve.requests.accepted")),
      rejected_full(telemetry::Registry::instance().counter(
          "serve.requests.rejected_queue_full")),
      rejected_invalid(telemetry::Registry::instance().counter(
          "serve.requests.rejected_invalid")),
      cancelled_deadline(telemetry::Registry::instance().counter(
          "serve.requests.cancelled_deadline")),
      completed(telemetry::Registry::instance().counter(
          "serve.requests.completed")),
      flows_served(
          telemetry::Registry::instance().counter("serve.flows.served")),
      cache_hits(telemetry::Registry::instance().counter("serve.cache.hits")),
      cache_misses(
          telemetry::Registry::instance().counter("serve.cache.misses")),
      batches(
          telemetry::Registry::instance().counter("serve.batch.dispatched")),
      queue_depth(telemetry::Registry::instance().gauge("serve.queue.depth")),
      batch_size(telemetry::Registry::instance().histogram(
          "serve.batch.size", batch_size_bounds())),
      queue_wait(telemetry::Registry::instance().histogram(
          "serve.latency.queue_wait_seconds")),
      latency(telemetry::Registry::instance().histogram(
          "serve.latency.total_seconds")) {}

}  // namespace repro::serve
