#include "serve/batcher.hpp"

#include <limits>

#include "common/telemetry/trace.hpp"

namespace repro::serve {

BatchKey batch_key_of(const GenerateRequest& request) {
  return BatchKey{request.model, request.class_id, request.sampler,
                  request.ddim_steps, request.precision};
}

bool BatchScheduler::should_dispatch(const RequestQueue& queue,
                                     double now) const {
  const std::size_t depth = queue.size();
  if (depth == 0) return false;
  if (depth >= policy_.max_batch_flows) return true;  // backlog: go now
  return now - queue.oldest_enqueue_time() >= policy_.max_wait;
}

FormedBatch BatchScheduler::form(RequestQueue& queue, double now) const {
  REPRO_SPAN("serve.batch.form");
  FormedBatch formed;
  // Cancel-before-work: every expired request leaves the queue here,
  // before any model work is considered, regardless of batch key. The
  // caller's single `now` governs the whole sweep (see
  // RequestQueue::sweep_expired).
  formed.expired =
      queue.sweep_expired(now, std::numeric_limits<std::size_t>::max());

  std::optional<Pending> head = queue.pop_head();
  if (!head) return formed;
  formed.key = batch_key_of(head->request);
  formed.flows = head->request.count;
  formed.batch.push_back(std::move(*head));

  // Gather same-key mates while the flow budget lasts. The budget
  // closure is stateful: extract_matching scans FIFO per lane, so the
  // first fitting requests win deterministically.
  std::size_t budget = policy_.max_batch_flows > formed.flows
                           ? policy_.max_batch_flows - formed.flows
                           : 0;
  if (budget > 0) {
    std::vector<Pending> mates = queue.extract_matching(
        [this, &formed, &budget](const Pending& p) {
          if (!(batch_key_of(p.request) == formed.key)) return false;
          if (p.request.count > budget) return false;
          budget -= p.request.count;
          return true;
        },
        policy_.max_batch_flows);
    for (auto& m : mates) {
      formed.flows += m.request.count;
      formed.batch.push_back(std::move(m));
    }
  }
  return formed;
}

}  // namespace repro::serve
