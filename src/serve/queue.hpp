// Bounded MPMC request queue with priority lanes and non-blocking
// admission control.
//
// Producers (any thread) call try_push; when the queue is at capacity
// the push is refused with a typed reason instead of blocking — the
// backpressure half of the serving contract: accepted work is never
// dropped, and excess work is never silently queued without bound.
// The batch scheduler consumes via pop_head / extract_matching.
#pragma once

#include <array>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <optional>
#include <vector>

#include "serve/request.hpp"

namespace repro::serve {

/// A queued request plus its delivery channel and bookkeeping.
struct Pending {
  GenerateRequest request;
  std::uint64_t id = 0;
  double enqueue_time = 0.0;  ///< service-clock seconds at admission
  std::promise<Response> promise;
};

class RequestQueue {
 public:
  /// `capacity` bounds the TOTAL queued requests across all lanes.
  explicit RequestQueue(std::size_t capacity);

  /// Non-blocking admission: nullopt on success; kQueueFull (and `p`
  /// untouched) when at capacity.
  std::optional<RejectReason> try_push(Pending&& p);

  /// Oldest request of the highest-priority non-empty lane.
  std::optional<Pending> pop_head();

  /// Removes up to `max` requests for which `pred` returns true,
  /// scanning lanes high-to-low priority, FIFO within a lane. `pred`
  /// may be stateful (e.g. a closing flow budget).
  std::vector<Pending> extract_matching(
      const std::function<bool(const Pending&)>& pred, std::size_t max);

  /// Deadline sweep: removes up to `max` requests whose deadline
  /// precedes `now`. The caller reads the clock ONCE per sweep and
  /// injects it — under an N-lane fan-out a slow sweep must not compare
  /// later requests against a fresher timestamp than earlier ones, or a
  /// stalled lane cancels work that was inside its deadline when the
  /// sweep began.
  std::vector<Pending> sweep_expired(double now, std::size_t max);

  std::size_t size() const;
  bool empty() const { return size() == 0; }

  /// Queued requests per priority lane (for the lane-depth gauges).
  std::array<std::size_t, kPriorityLanes> lane_sizes() const;

  /// Earliest enqueue_time across all queued requests; +inf when empty.
  double oldest_enqueue_time() const;

 private:
  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::deque<Pending> lanes_[kPriorityLanes];
};

}  // namespace repro::serve
