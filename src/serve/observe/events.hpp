// Request-scoped trace events.
//
// Every request admitted to the TraceService is assigned a trace id (the
// request id minted at admission) and leaves a breadcrumb trail of typed
// FlightEvents as it moves through the serving stages:
//
//   submitted -> rejected                      (admission refused, typed)
//             -> cache_hit                     (terminal; no queue/model)
//             -> admitted (lane) -> deadline_swept -> cancelled
//                                -> coalesced (batch B)
//                                   ... model_start/model_end (batch B)
//                                -> completed (batch B)
//
// The socket front-end (src/serve/net) adds connection-scoped events:
// conn_opened / conn_closed bracket a connection's lifetime, and every
// request that arrives over the wire is wrapped in frame_decoded (where
// its trace id is minted, before submit()) and frame_sent (response or
// error frame written back). For these kinds the batch_id field carries
// the CONNECTION id instead — is_conn_scoped() tells the two apart.
//
// Events are fixed-size PODs (no strings, no heap) so the flight
// recorder can store them in a lock-free ring and the hot path stays at
// a single atomic reservation per event. Timestamps come from the
// service's injectable ClockFn, so tests record deterministic timelines.
#pragma once

#include <cstdint>

#include "serve/request.hpp"

namespace repro::serve::observe {

/// What happened to a request (or to a batch) at one instant.
enum class EventKind : std::uint8_t {
  kSubmitted = 0,   ///< submit() called; trace id minted
  kRejected,        ///< admission refused (detail = RejectReason)
  kCacheHit,        ///< served from the result cache (terminal)
  kAdmitted,        ///< enqueued into a priority lane
  kDeadlineSwept,   ///< pulled from the queue because its deadline passed
  kCoalesced,       ///< placed into batch `batch_id`
  kModelStart,      ///< batch-scoped: batched model call began
  kModelEnd,        ///< batch-scoped: batched model call returned
  kCompleted,       ///< response fulfilled (terminal)
  kCancelled,       ///< response cancelled (terminal; detail = reason)
  kFrameDecoded,    ///< conn-scoped: request frame decoded, trace id minted
  kFrameSent,       ///< conn-scoped: response/error frame written back
  kConnOpened,      ///< conn-scoped: connection accepted
  kConnClosed,      ///< conn-scoped: connection closed
};

inline constexpr std::size_t kEventKinds = 14;

const char* to_string(EventKind kind) noexcept;

/// True for the event kinds that end a request's timeline.
constexpr bool is_terminal(EventKind kind) noexcept {
  return kind == EventKind::kRejected || kind == EventKind::kCacheHit ||
         kind == EventKind::kCompleted || kind == EventKind::kCancelled;
}

/// True for the socket front-end kinds whose batch_id field carries a
/// connection id, not a batch id (see the header comment).
constexpr bool is_conn_scoped(EventKind kind) noexcept {
  return kind == EventKind::kFrameDecoded || kind == EventKind::kFrameSent ||
         kind == EventKind::kConnOpened || kind == EventKind::kConnClosed;
}

/// One timeline entry. `request_id` is 0 for batch-scoped events
/// (model_start / model_end); `batch_id` is 0 until the request joins a
/// batch. `detail` carries the RejectReason for rejected / cancelled.
struct FlightEvent {
  double time = 0.0;             ///< service-clock seconds
  std::uint64_t request_id = 0;  ///< trace id (0 = batch-scoped event)
  std::uint64_t batch_id = 0;    ///< 0 when not (yet) batched
  std::uint32_t flows = 0;       ///< flows this event accounts for
  EventKind kind = EventKind::kSubmitted;
  std::uint8_t lane = 0;         ///< priority lane index
  std::uint16_t detail = 0;      ///< RejectReason for rejected/cancelled
};

static_assert(sizeof(FlightEvent) <= 32,
              "FlightEvent must stay small: the recorder copies it by "
              "value on every serving-stage transition");

}  // namespace repro::serve::observe
