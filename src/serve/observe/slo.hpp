// Per-priority-lane latency objectives with rolling error-budget
// windows.
//
// Each lane declares a latency objective (seconds). A completion whose
// end-to-end latency exceeds the lane's objective — and every deadline
// cancellation — burns error budget. The tracker keeps a bucketed time
// wheel per lane covering the trailing `window` seconds of service-clock
// time, so budget status reflects recent behavior, not process lifetime
// averages: a latency regression surfaces in the serving path within one
// window instead of being diluted by hours of healthy history.
//
// Budget semantics: within a window of `total` requests, up to
// `error_budget * total` may violate their objective. budget_remaining
// is the unconsumed fraction of that allowance (1 = untouched, 0 =
// exhausted, negative = overdrawn). Status derives from it:
//   ok        remaining >= 0.25
//   at_risk   0 < remaining < 0.25
//   breached  remaining <= 0
//
// Time comes from the service's injectable ClockFn, so tests drive the
// wheel deterministically. Updates happen on the pump (single consumer);
// snapshots may race from other threads, hence the internal mutex.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <vector>

#include "serve/request.hpp"

namespace repro::serve::observe {

struct SloPolicy {
  /// Per-lane end-to-end latency objectives, seconds (high, normal,
  /// low). A completion above its lane's objective is a violation.
  std::array<double, kPriorityLanes> latency_objective = {0.1, 0.5, 2.0};
  /// Trailing window the error budget is evaluated over, seconds.
  double window = 60.0;
  /// Wheel granularity; window/buckets seconds per bucket.
  std::size_t buckets = 12;
  /// Fraction of windowed requests allowed to violate their objective.
  double error_budget = 0.1;
};

/// Point-in-time view of one lane's rolling window.
struct LaneBudget {
  std::uint64_t total = 0;       ///< requests finished in the window
  std::uint64_t violations = 0;  ///< objective misses + cancellations
  double budget_remaining = 1.0;
  const char* status = "ok";     ///< "ok" | "at_risk" | "breached"
};

class SloTracker {
 public:
  explicit SloTracker(SloPolicy policy);

  const SloPolicy& policy() const noexcept { return policy_; }

  /// A request on `lane` completed with end-to-end `latency` seconds.
  void on_completed(std::size_t lane, double latency, double now);

  /// A request on `lane` was cancelled (deadline swept / model gone):
  /// always a violation — the objective was unmet by definition.
  void on_cancelled(std::size_t lane, double now);

  LaneBudget lane_budget(std::size_t lane, double now) const;

  /// Worst lane status: "ok" unless any lane is at_risk / breached.
  const char* overall_status(double now) const;

 private:
  struct Bucket {
    std::uint64_t total = 0;
    std::uint64_t violations = 0;
  };
  struct Lane {
    std::vector<Bucket> wheel;
    std::int64_t newest_slot = -1;  ///< absolute bucket index of head
  };

  /// Rotates `lane`'s wheel forward to the bucket containing `now`,
  /// zeroing skipped buckets. Caller holds the mutex.
  Bucket& advance(Lane& lane, double now);
  void count(std::size_t lane, bool violation, double now);
  LaneBudget windowed(const Lane& lane, double now) const;

  SloPolicy policy_;
  double bucket_width_;
  mutable std::mutex mutex_;
  std::array<Lane, kPriorityLanes> lanes_;
};

}  // namespace repro::serve::observe
