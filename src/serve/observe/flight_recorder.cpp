#include "serve/observe/flight_recorder.hpp"

#include "common/telemetry/export.hpp"
#include "common/telemetry/metrics.hpp"

namespace repro::serve::observe {
namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

const char* to_string(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kSubmitted: return "submitted";
    case EventKind::kRejected: return "rejected";
    case EventKind::kCacheHit: return "cache_hit";
    case EventKind::kAdmitted: return "admitted";
    case EventKind::kDeadlineSwept: return "deadline_swept";
    case EventKind::kCoalesced: return "coalesced";
    case EventKind::kModelStart: return "model_start";
    case EventKind::kModelEnd: return "model_end";
    case EventKind::kCompleted: return "completed";
    case EventKind::kCancelled: return "cancelled";
    case EventKind::kFrameDecoded: return "frame_decoded";
    case EventKind::kFrameSent: return "frame_sent";
    case EventKind::kConnOpened: return "conn_opened";
    case EventKind::kConnClosed: return "conn_closed";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(std::size_t capacity) {
  if (capacity == 0) return;
  capacity_ = round_up_pow2(capacity);
  mask_ = capacity_ - 1;
  slots_ = std::make_unique<Slot[]>(capacity_);
}

bool FlightRecorder::armed() const noexcept {
  if (capacity_ == 0) return false;
  return telemetry::enabled() || forced_.load(std::memory_order_relaxed);
}

void FlightRecorder::record(const FlightEvent& event) noexcept {
  // Disabled path: the telemetry switch is one relaxed atomic load (the
  // force flag is only consulted when the switch is off).
  if (!armed()) return;
  force_record(event);
}

void FlightRecorder::force_record(const FlightEvent& event) noexcept {
  if (capacity_ == 0) return;
  // One atomic reservation; the seqlock stores publish the slot so a
  // concurrent dump() skips (never tears) a slot caught mid-write.
  const std::uint64_t n = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[n & mask_];
  slot.seq.store(0, std::memory_order_release);  // mark in-progress
  slot.event = event;
  slot.seq.store(n + 1, std::memory_order_release);  // publish
}

std::uint64_t FlightRecorder::overwritten() const noexcept {
  const std::uint64_t total = recorded();
  return total > capacity_ ? total - capacity_ : 0;
}

std::vector<FlightEvent> FlightRecorder::dump() const {
  std::vector<FlightEvent> out;
  if (capacity_ == 0) return out;
  const std::uint64_t end = next_.load(std::memory_order_acquire);
  const std::uint64_t begin = end > capacity_ ? end - capacity_ : 0;
  out.reserve(static_cast<std::size_t>(end - begin));
  for (std::uint64_t n = begin; n < end; ++n) {
    const Slot& slot = slots_[n & mask_];
    if (slot.seq.load(std::memory_order_acquire) != n + 1) continue;
    FlightEvent event = slot.event;
    // Re-check after the copy: a producer may have lapped us mid-read.
    if (slot.seq.load(std::memory_order_acquire) != n + 1) continue;
    out.push_back(event);
  }
  return out;
}

std::string FlightRecorder::dump_json() const {
  return flight_dump_json(dump(), capacity_, recorded(), overwritten());
}

std::string flight_dump_json(const std::vector<FlightEvent>& events,
                             std::size_t capacity, std::uint64_t recorded,
                             std::uint64_t overwritten) {
  telemetry::JsonWriter json;
  json.begin_object();
  json.key("capacity");
  json.value(static_cast<std::uint64_t>(capacity));
  json.key("recorded");
  json.value(recorded);
  json.key("overwritten");
  json.value(overwritten);
  json.key("events");
  json.begin_array();
  for (const FlightEvent& event : events) {
    json.begin_object();
    json.key("t");
    json.value(event.time);
    json.key("kind");
    json.value(to_string(event.kind));
    json.key("request");
    json.value(event.request_id);
    // Connection-scoped kinds reuse the batch_id field for the
    // connection id; the dump names the key accordingly so inspect (and
    // humans) never mistake one for the other.
    json.key(is_conn_scoped(event.kind) ? "conn" : "batch");
    json.value(event.batch_id);
    json.key("lane");
    json.value(static_cast<std::uint64_t>(event.lane));
    json.key("flows");
    json.value(static_cast<std::uint64_t>(event.flows));
    if (event.kind == EventKind::kRejected ||
        event.kind == EventKind::kCancelled) {
      json.key("reason");
      json.value(to_string(static_cast<RejectReason>(event.detail)));
    }
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return std::move(json).str();
}

}  // namespace repro::serve::observe
