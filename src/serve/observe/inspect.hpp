// Timeline reconstruction from flight-recorder dumps and Chrome traces.
//
// The flight recorder emits flat JSON; this layer parses it back (a
// minimal dependency-free JSON reader — the repo has a writer in
// common/telemetry but deliberately had no reader until now) and
// reconstructs:
//   * per-request timelines — ordered events from admission to the
//     terminal event, flagged complete/incomplete,
//   * per-batch composition — which requests each batched model call
//     served and how many flows it carried.
//
// tools/repro_trace_inspect is a thin CLI over these functions; the
// repro_served selftest and the check.sh flight-recorder gate call them
// directly to verify that a dump covers every request end-to-end.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "serve/observe/events.hpp"

namespace repro::serve::observe {

// --- Minimal JSON value + reader ------------------------------------------

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_object() const noexcept { return type == Type::kObject; }
  bool is_array() const noexcept { return type == Type::kArray; }
  /// Object member or nullptr (also nullptr when not an object).
  const JsonValue* find(const std::string& key) const;
  double num_or(double fallback) const noexcept {
    return type == Type::kNumber ? number : fallback;
  }
  const std::string& str_or(const std::string& fallback) const {
    return type == Type::kString ? string : fallback;
  }
};

/// Parses one JSON document; nullopt on malformed input (trailing
/// garbage after the document is also malformed).
std::optional<JsonValue> parse_json(const std::string& text);

// --- Flight-dump decoding -------------------------------------------------

std::optional<EventKind> event_kind_from(const std::string& name);
std::optional<RejectReason> reject_reason_from(const std::string& name);

struct FlightDump {
  std::size_t capacity = 0;
  std::uint64_t recorded = 0;
  std::uint64_t overwritten = 0;
  std::vector<FlightEvent> events;
};

/// Decodes a dump produced by FlightRecorder::dump_json(); nullopt when
/// the document is not a flight dump.
std::optional<FlightDump> parse_flight_dump(const std::string& text);

// --- Reconstruction -------------------------------------------------------

struct RequestTimeline {
  std::uint64_t request_id = 0;
  std::vector<FlightEvent> events;  ///< in recorded order
  std::uint64_t batch_id = 0;       ///< 0 = never batched
  std::uint64_t conn_id = 0;        ///< 0 = not served over a socket
  std::uint8_t lane = 0;
  /// A timeline is complete when it spans admission to a terminal event
  /// — or, for wire requests, when it runs frame_decoded to frame_sent
  /// (a request rejected at the protocol layer never reaches submit()
  /// but was still answered on the connection).
  bool complete = false;
  double start = 0.0;  ///< first event time
  double end = 0.0;    ///< last event time
  EventKind terminal = EventKind::kSubmitted;  ///< valid when complete
};

struct BatchComposition {
  std::uint64_t batch_id = 0;
  std::vector<std::uint64_t> request_ids;
  std::uint32_t flows = 0;      ///< from the model_start event
  double model_start = 0.0;
  double model_end = 0.0;
};

/// Per-connection summary rebuilt from the conn-scoped events the
/// socket front-end records (frame_decoded / frame_sent bracket each
/// wire request; conn_opened / conn_closed bracket the connection).
struct ConnectionSummary {
  std::uint64_t conn_id = 0;
  std::size_t frames_decoded = 0;
  std::size_t frames_sent = 0;
  bool opened = false;
  bool closed = false;
  std::vector<std::uint64_t> request_ids;  ///< trace ids decoded on it
};

struct InspectReport {
  std::vector<RequestTimeline> requests;  ///< ascending request id
  std::vector<BatchComposition> batches;  ///< ascending batch id
  std::vector<ConnectionSummary> connections;  ///< ascending conn id
  std::size_t complete = 0;               ///< requests with full timelines
};

InspectReport reconstruct(const std::vector<FlightEvent>& events);

/// Human-readable rendering of the report (one line per event, grouped
/// by request, then the batch table).
std::string report_text(const InspectReport& report);

/// Report as JSON, for scripted assertions.
std::string report_json(const InspectReport& report);

}  // namespace repro::serve::observe
