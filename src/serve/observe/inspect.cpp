#include "serve/observe/inspect.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "common/telemetry/export.hpp"

namespace repro::serve::observe {

const JsonValue* JsonValue::find(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  const auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

// --- Recursive-descent JSON reader ----------------------------------------

namespace {

struct Parser {
  const std::string& text;
  std::size_t pos = 0;
  bool failed = false;

  void skip_ws() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }
  char peek() {
    skip_ws();
    return pos < text.size() ? text[pos] : '\0';
  }
  bool consume(char c) {
    if (peek() != c) return false;
    ++pos;
    return true;
  }
  bool consume_word(const char* word) {
    const std::size_t len = std::char_traits<char>::length(word);
    if (text.compare(pos, len, word) != 0) return false;
    pos += len;
    return true;
  }

  JsonValue parse_value() {
    JsonValue out;
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"':
        out.type = JsonValue::Type::kString;
        out.string = parse_string();
        return out;
      case 't':
        if (consume_word("true")) {
          out.type = JsonValue::Type::kBool;
          out.boolean = true;
          return out;
        }
        break;
      case 'f':
        if (consume_word("false")) {
          out.type = JsonValue::Type::kBool;
          return out;
        }
        break;
      case 'n':
        if (consume_word("null")) return out;
        break;
      default: return parse_number();
    }
    failed = true;
    return out;
  }

  std::string parse_string() {
    std::string out;
    if (!consume('"')) {
      failed = true;
      return out;
    }
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '"') return out;
      if (c == '\\' && pos < text.size()) {
        const char esc = text[pos++];
        switch (esc) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            // Decode \uXXXX; non-ASCII code points are passed through as
            // '?' — metric/event names in our dumps are ASCII.
            if (pos + 4 <= text.size()) {
              const unsigned long cp =
                  std::strtoul(text.substr(pos, 4).c_str(), nullptr, 16);
              out += cp < 0x80 ? static_cast<char>(cp) : '?';
              pos += 4;
            } else {
              failed = true;
              return out;
            }
            break;
          }
          default: out += esc;
        }
      } else {
        out += c;
      }
    }
    failed = true;  // unterminated
    return out;
  }

  JsonValue parse_number() {
    JsonValue out;
    skip_ws();
    const char* start = text.c_str() + pos;
    char* end = nullptr;
    out.number = std::strtod(start, &end);
    if (end == start) {
      failed = true;
      return out;
    }
    out.type = JsonValue::Type::kNumber;
    pos += static_cast<std::size_t>(end - start);
    return out;
  }

  JsonValue parse_object() {
    JsonValue out;
    out.type = JsonValue::Type::kObject;
    consume('{');
    if (consume('}')) return out;
    do {
      if (peek() != '"') {
        failed = true;
        return out;
      }
      std::string key = parse_string();
      if (!consume(':')) {
        failed = true;
        return out;
      }
      out.object.emplace(std::move(key), parse_value());
      if (failed) return out;
    } while (consume(','));
    if (!consume('}')) failed = true;
    return out;
  }

  JsonValue parse_array() {
    JsonValue out;
    out.type = JsonValue::Type::kArray;
    consume('[');
    if (consume(']')) return out;
    do {
      out.array.push_back(parse_value());
      if (failed) return out;
    } while (consume(','));
    if (!consume(']')) failed = true;
    return out;
  }
};

}  // namespace

std::optional<JsonValue> parse_json(const std::string& text) {
  Parser parser{text};
  JsonValue value = parser.parse_value();
  parser.skip_ws();
  if (parser.failed || parser.pos != text.size()) return std::nullopt;
  return value;
}

// --- Flight-dump decoding -------------------------------------------------

std::optional<EventKind> event_kind_from(const std::string& name) {
  for (std::size_t i = 0; i < kEventKinds; ++i) {
    const auto kind = static_cast<EventKind>(i);
    if (name == to_string(kind)) return kind;
  }
  return std::nullopt;
}

std::optional<RejectReason> reject_reason_from(const std::string& name) {
  for (const RejectReason reason :
       {RejectReason::kQueueFull, RejectReason::kDeadlineExpired,
        RejectReason::kUnknownModel, RejectReason::kUnknownClass,
        RejectReason::kBadRequest, RejectReason::kShuttingDown}) {
    if (name == to_string(reason)) return reason;
  }
  return std::nullopt;
}

std::optional<FlightDump> parse_flight_dump(const std::string& text) {
  const std::optional<JsonValue> doc = parse_json(text);
  if (!doc || !doc->is_object()) return std::nullopt;
  const JsonValue* events = doc->find("events");
  if (events == nullptr || !events->is_array()) return std::nullopt;

  FlightDump dump;
  if (const JsonValue* v = doc->find("capacity")) {
    dump.capacity = static_cast<std::size_t>(v->num_or(0.0));
  }
  if (const JsonValue* v = doc->find("recorded")) {
    dump.recorded = static_cast<std::uint64_t>(v->num_or(0.0));
  }
  if (const JsonValue* v = doc->find("overwritten")) {
    dump.overwritten = static_cast<std::uint64_t>(v->num_or(0.0));
  }
  dump.events.reserve(events->array.size());
  for (const JsonValue& entry : events->array) {
    if (!entry.is_object()) return std::nullopt;
    FlightEvent event;
    const JsonValue* kind = entry.find("kind");
    if (kind == nullptr) return std::nullopt;
    const std::optional<EventKind> decoded =
        event_kind_from(kind->str_or(""));
    if (!decoded) return std::nullopt;
    event.kind = *decoded;
    if (const JsonValue* v = entry.find("t")) event.time = v->num_or(0.0);
    if (const JsonValue* v = entry.find("request")) {
      event.request_id = static_cast<std::uint64_t>(v->num_or(0.0));
    }
    if (const JsonValue* v = entry.find("batch")) {
      event.batch_id = static_cast<std::uint64_t>(v->num_or(0.0));
    }
    // Conn-scoped events store the connection id under "conn"; it rides
    // in the same POD field (see events.hpp).
    if (const JsonValue* v = entry.find("conn")) {
      event.batch_id = static_cast<std::uint64_t>(v->num_or(0.0));
    }
    if (const JsonValue* v = entry.find("lane")) {
      event.lane = static_cast<std::uint8_t>(v->num_or(0.0));
    }
    if (const JsonValue* v = entry.find("flows")) {
      event.flows = static_cast<std::uint32_t>(v->num_or(0.0));
    }
    if (const JsonValue* v = entry.find("reason")) {
      if (const auto reason = reject_reason_from(v->str_or(""))) {
        event.detail = static_cast<std::uint16_t>(*reason);
      }
    }
    dump.events.push_back(event);
  }
  return dump;
}

// --- Reconstruction -------------------------------------------------------

InspectReport reconstruct(const std::vector<FlightEvent>& events) {
  std::map<std::uint64_t, RequestTimeline> requests;
  std::map<std::uint64_t, BatchComposition> batches;
  std::map<std::uint64_t, ConnectionSummary> connections;
  for (const FlightEvent& event : events) {
    if (is_conn_scoped(event.kind)) {
      // batch_id carries the connection id for these kinds; they must
      // never enter the batch table.
      if (event.batch_id != 0) {
        ConnectionSummary& conn = connections[event.batch_id];
        conn.conn_id = event.batch_id;
        switch (event.kind) {
          case EventKind::kConnOpened: conn.opened = true; break;
          case EventKind::kConnClosed: conn.closed = true; break;
          case EventKind::kFrameDecoded:
            ++conn.frames_decoded;
            if (event.request_id != 0) {
              conn.request_ids.push_back(event.request_id);
            }
            break;
          case EventKind::kFrameSent: ++conn.frames_sent; break;
          default: break;
        }
      }
    } else if (event.batch_id != 0) {
      BatchComposition& batch = batches[event.batch_id];
      batch.batch_id = event.batch_id;
      if (event.kind == EventKind::kModelStart) {
        batch.model_start = event.time;
        batch.flows = event.flows;
      } else if (event.kind == EventKind::kModelEnd) {
        batch.model_end = event.time;
      } else if (event.kind == EventKind::kCoalesced) {
        batch.request_ids.push_back(event.request_id);
      }
    }
    if (event.request_id == 0) continue;  // batch-/connection-scoped
    RequestTimeline& timeline = requests[event.request_id];
    timeline.request_id = event.request_id;
    if (timeline.events.empty()) timeline.start = event.time;
    timeline.end = event.time;
    if (event.batch_id != 0) {
      if (is_conn_scoped(event.kind)) {
        timeline.conn_id = event.batch_id;
      } else {
        timeline.batch_id = event.batch_id;
      }
    }
    if (!is_conn_scoped(event.kind)) timeline.lane = event.lane;
    if (is_terminal(event.kind)) timeline.terminal = event.kind;
    timeline.events.push_back(event);
  }
  InspectReport report;
  report.requests.reserve(requests.size());
  for (auto& [id, timeline] : requests) {
    bool has_submit = false, has_terminal = false;
    bool has_decoded = false, has_sent = false;
    for (const FlightEvent& e : timeline.events) {
      if (e.kind == EventKind::kSubmitted) has_submit = true;
      if (is_terminal(e.kind)) has_terminal = true;
      if (e.kind == EventKind::kFrameDecoded) has_decoded = true;
      if (e.kind == EventKind::kFrameSent) has_sent = true;
    }
    // In-process requests must run admission to terminal; wire requests
    // count as complete once their response frame left the connection
    // (protocol-layer rejects are answered without ever reaching
    // submit(), so frame_decoded -> frame_sent is their full story).
    timeline.complete = (has_submit && has_terminal) ||
                        (has_decoded && has_sent);
    if (timeline.complete) ++report.complete;
    report.requests.push_back(std::move(timeline));
  }
  report.batches.reserve(batches.size());
  for (auto& [id, batch] : batches) {
    report.batches.push_back(std::move(batch));
  }
  report.connections.reserve(connections.size());
  for (auto& [id, conn] : connections) {
    report.connections.push_back(std::move(conn));
  }
  return report;
}

std::string report_text(const InspectReport& report) {
  std::string out;
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "%zu requests (%zu complete), %zu batches\n\n",
                report.requests.size(), report.complete,
                report.batches.size());
  out += buf;
  for (const RequestTimeline& timeline : report.requests) {
    std::snprintf(buf, sizeof buf,
                  "request %llu lane=%u %s span=%.3fms%s\n",
                  static_cast<unsigned long long>(timeline.request_id),
                  static_cast<unsigned>(timeline.lane),
                  timeline.complete ? "complete" : "INCOMPLETE",
                  (timeline.end - timeline.start) * 1e3,
                  timeline.batch_id != 0 ? "" : " (unbatched)");
    out += buf;
    for (const FlightEvent& event : timeline.events) {
      std::snprintf(buf, sizeof buf, "  %10.3fms  %-14s", event.time * 1e3,
                    to_string(event.kind));
      out += buf;
      if (event.batch_id != 0) {
        std::snprintf(buf, sizeof buf, " %s=%llu",
                      is_conn_scoped(event.kind) ? "conn" : "batch",
                      static_cast<unsigned long long>(event.batch_id));
        out += buf;
      }
      if (event.flows != 0) {
        std::snprintf(buf, sizeof buf, " flows=%u", event.flows);
        out += buf;
      }
      if (event.kind == EventKind::kRejected ||
          event.kind == EventKind::kCancelled) {
        std::snprintf(buf, sizeof buf, " reason=%s",
                      to_string(static_cast<RejectReason>(event.detail)));
        out += buf;
      }
      out += '\n';
    }
  }
  if (!report.batches.empty()) out += "\nbatches:\n";
  for (const BatchComposition& batch : report.batches) {
    std::snprintf(buf, sizeof buf,
                  "  batch %llu: %zu requests, %u flows, model %.3fms\n",
                  static_cast<unsigned long long>(batch.batch_id),
                  batch.request_ids.size(), batch.flows,
                  (batch.model_end - batch.model_start) * 1e3);
    out += buf;
  }
  if (!report.connections.empty()) out += "\nconnections:\n";
  for (const ConnectionSummary& conn : report.connections) {
    std::snprintf(buf, sizeof buf,
                  "  conn %llu: %zu frames in, %zu frames out, "
                  "%zu requests%s%s\n",
                  static_cast<unsigned long long>(conn.conn_id),
                  conn.frames_decoded, conn.frames_sent,
                  conn.request_ids.size(), conn.opened ? "" : " (no open)",
                  conn.closed ? "" : " (still open)");
    out += buf;
  }
  return out;
}

std::string report_json(const InspectReport& report) {
  telemetry::JsonWriter json;
  json.begin_object();
  json.key("requests");
  json.value(static_cast<std::uint64_t>(report.requests.size()));
  json.key("complete");
  json.value(static_cast<std::uint64_t>(report.complete));
  json.key("timelines");
  json.begin_array();
  for (const RequestTimeline& timeline : report.requests) {
    json.begin_object();
    json.key("request");
    json.value(timeline.request_id);
    json.key("lane");
    json.value(static_cast<std::uint64_t>(timeline.lane));
    json.key("complete");
    json.value(timeline.complete);
    json.key("batch");
    json.value(timeline.batch_id);
    json.key("start");
    json.value(timeline.start);
    json.key("end");
    json.value(timeline.end);
    if (timeline.complete) {
      json.key("terminal");
      json.value(to_string(timeline.terminal));
    }
    json.key("events");
    json.begin_array();
    for (const FlightEvent& event : timeline.events) {
      json.value(to_string(event.kind));
    }
    json.end_array();
    json.end_object();
  }
  json.end_array();
  json.key("batches");
  json.begin_array();
  for (const BatchComposition& batch : report.batches) {
    json.begin_object();
    json.key("batch");
    json.value(batch.batch_id);
    json.key("flows");
    json.value(static_cast<std::uint64_t>(batch.flows));
    json.key("model_ms");
    json.value((batch.model_end - batch.model_start) * 1e3);
    json.key("requests");
    json.begin_array();
    for (const std::uint64_t id : batch.request_ids) json.value(id);
    json.end_array();
    json.end_object();
  }
  json.end_array();
  json.key("connections");
  json.begin_array();
  for (const ConnectionSummary& conn : report.connections) {
    json.begin_object();
    json.key("conn");
    json.value(conn.conn_id);
    json.key("frames_decoded");
    json.value(static_cast<std::uint64_t>(conn.frames_decoded));
    json.key("frames_sent");
    json.value(static_cast<std::uint64_t>(conn.frames_sent));
    json.key("opened");
    json.value(conn.opened);
    json.key("closed");
    json.value(conn.closed);
    json.key("requests");
    json.begin_array();
    for (const std::uint64_t id : conn.request_ids) json.value(id);
    json.end_array();
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return std::move(json).str();
}

}  // namespace repro::serve::observe
