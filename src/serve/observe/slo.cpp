#include "serve/observe/slo.hpp"

#include <algorithm>
#include <cmath>
#include <string_view>

#include "common/contracts.hpp"

namespace repro::serve::observe {

SloTracker::SloTracker(SloPolicy policy) : policy_(policy) {
  if (policy_.buckets == 0) policy_.buckets = 1;
  if (policy_.window <= 0.0) policy_.window = 60.0;
  bucket_width_ = policy_.window / static_cast<double>(policy_.buckets);
  for (Lane& lane : lanes_) {
    lane.wheel.assign(policy_.buckets, Bucket{});
  }
}

SloTracker::Bucket& SloTracker::advance(Lane& lane, double now) {
  const auto slot = static_cast<std::int64_t>(std::floor(now / bucket_width_));
  if (lane.newest_slot < 0) {
    lane.newest_slot = slot;
  } else if (slot > lane.newest_slot) {
    // Zero every bucket the clock skipped; cap at a full wheel wipe.
    const std::int64_t skipped =
        std::min(slot - lane.newest_slot,
                 static_cast<std::int64_t>(policy_.buckets));
    for (std::int64_t i = 1; i <= skipped; ++i) {
      const auto idx = static_cast<std::size_t>(
          (lane.newest_slot + i) % static_cast<std::int64_t>(policy_.buckets));
      lane.wheel[idx] = Bucket{};
    }
    lane.newest_slot = slot;
  }
  // A stale `now` (clock raced backwards across pump calls) lands in the
  // newest bucket rather than resurrecting an expired one.
  const auto idx = static_cast<std::size_t>(
      lane.newest_slot % static_cast<std::int64_t>(policy_.buckets));
  return lane.wheel[idx];
}

void SloTracker::count(std::size_t lane_index, bool violation, double now) {
  REPRO_REQUIRE(lane_index < kPriorityLanes, "slo: lane out of range");
  std::lock_guard<std::mutex> lock(mutex_);
  Bucket& bucket = advance(lanes_[lane_index], now);
  bucket.total += 1;
  if (violation) bucket.violations += 1;
}

void SloTracker::on_completed(std::size_t lane, double latency, double now) {
  count(lane, latency > policy_.latency_objective[lane], now);
}

void SloTracker::on_cancelled(std::size_t lane, double now) {
  count(lane, true, now);
}

LaneBudget SloTracker::windowed(const Lane& lane, double now) const {
  LaneBudget out;
  if (lane.newest_slot < 0) return out;
  const auto slot = static_cast<std::int64_t>(std::floor(now / bucket_width_));
  const std::int64_t head = std::max(slot, lane.newest_slot);
  for (std::size_t i = 0; i < policy_.buckets; ++i) {
    const std::int64_t abs_slot = head - static_cast<std::int64_t>(i);
    if (abs_slot < 0 || abs_slot > lane.newest_slot ||
        lane.newest_slot - abs_slot >=
            static_cast<std::int64_t>(policy_.buckets)) {
      continue;  // bucket is in the future or already rotated out
    }
    const auto idx = static_cast<std::size_t>(
        abs_slot % static_cast<std::int64_t>(policy_.buckets));
    out.total += lane.wheel[idx].total;
    out.violations += lane.wheel[idx].violations;
  }
  const double allowed =
      policy_.error_budget * static_cast<double>(out.total);
  if (out.total == 0) {
    out.budget_remaining = 1.0;
  } else if (allowed <= 0.0) {
    out.budget_remaining = out.violations == 0 ? 1.0 : 0.0;
  } else {
    out.budget_remaining =
        1.0 - static_cast<double>(out.violations) / allowed;
  }
  if (out.budget_remaining <= 0.0) {
    out.status = "breached";
  } else if (out.budget_remaining < 0.25) {
    out.status = "at_risk";
  } else {
    out.status = "ok";
  }
  return out;
}

LaneBudget SloTracker::lane_budget(std::size_t lane, double now) const {
  REPRO_REQUIRE(lane < kPriorityLanes, "slo: lane out of range");
  std::lock_guard<std::mutex> lock(mutex_);
  return windowed(lanes_[lane], now);
}

const char* SloTracker::overall_status(double now) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const char* worst = "ok";
  for (const Lane& lane : lanes_) {
    const LaneBudget b = windowed(lane, now);
    if (std::string_view(b.status) == "breached") return "breached";
    if (std::string_view(b.status) == "at_risk") worst = "at_risk";
  }
  return worst;
}

}  // namespace repro::serve::observe
