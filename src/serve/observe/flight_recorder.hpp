// Flight recorder: a fixed-size lock-free ring of recent FlightEvents.
//
// The recorder is always wired into the serving path; whether it records
// is decided per event by armed(): a single relaxed atomic load (the
// process-wide telemetry switch) plus an optional force flag for tools
// and tests that need a dump while REPRO_TELEMETRY is off. The disabled
// path does exactly that one load — no allocation, no lock, no clock
// read — which is what keeps it safe to leave in production admission
// and dispatch code (regression-locked in tests/observe_test.cpp).
//
// The armed path reserves a slot with one atomic fetch_add and publishes
// the event under a per-slot seqlock, so concurrent producers never
// block each other and a dump() taken mid-flight simply skips slots it
// caught mid-write. The ring keeps the most recent `capacity` events;
// older ones are overwritten (overwrites are counted, not hidden).
//
// dump_json() serializes the surviving window as
//   {"capacity":N,"recorded":N,"overwritten":N,"events":[...]}
// — the format tools/repro_trace_inspect and the check.sh gate consume.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "serve/observe/events.hpp"

namespace repro::serve::observe {

class FlightRecorder {
 public:
  /// `capacity` is rounded up to a power of two; 0 disables the
  /// recorder entirely (record() returns after one branch).
  explicit FlightRecorder(std::size_t capacity);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Records `event` when armed; a single relaxed load when not.
  void record(const FlightEvent& event) noexcept;

  /// Records regardless of the telemetry switch (capacity 0 still
  /// disables). Used by forced-on tools; the serving path calls
  /// record().
  void force_record(const FlightEvent& event) noexcept;

  /// Arms the recorder even while telemetry is globally off.
  void set_forced(bool on) noexcept {
    forced_.store(on, std::memory_order_relaxed);
  }

  bool armed() const noexcept;

  /// Oldest-to-newest copy of the surviving window. Slots caught
  /// mid-write by a concurrent producer are skipped, never torn.
  std::vector<FlightEvent> dump() const;

  /// The dump plus recorder accounting, as a JSON document.
  std::string dump_json() const;

  std::size_t capacity() const noexcept { return capacity_; }
  /// Total events accepted since construction (monotonic).
  std::uint64_t recorded() const noexcept {
    return next_.load(std::memory_order_relaxed);
  }
  /// Events lost to ring wrap-around.
  std::uint64_t overwritten() const noexcept;

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq{0};  ///< 0 empty; n+1 = event n published
    FlightEvent event;
  };

  std::size_t capacity_ = 0;  ///< power of two (or 0)
  std::uint64_t mask_ = 0;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> next_{0};
  std::atomic<bool> forced_{false};
};

/// Serializes `events` (with recorder accounting) in the dump format.
std::string flight_dump_json(const std::vector<FlightEvent>& events,
                             std::size_t capacity, std::uint64_t recorded,
                             std::uint64_t overwritten);

}  // namespace repro::serve::observe
