#include "serve/clock.hpp"

#include <chrono>

namespace repro::serve {

ClockFn steady_clock_fn() {
  return [] {
    const auto now = std::chrono::steady_clock::now().time_since_epoch();
    return std::chrono::duration<double>(now).count();
  };
}

}  // namespace repro::serve
