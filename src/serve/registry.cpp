#include "serve/registry.hpp"

#include <stdexcept>
#include <utility>

#include "nn/serialize.hpp"

namespace repro::serve {

void ModelRegistry::install(
    const std::string& name,
    std::shared_ptr<diffusion::TraceDiffusion> pipeline,
    std::string version) {
  if (!pipeline) {
    throw std::invalid_argument("ModelRegistry::install: null pipeline");
  }
  auto snap = std::make_shared<ModelSnapshot>();
  snap->num_classes = pipeline->prompts().num_classes();
  snap->distilled_steps = pipeline->distilled_step_counts();
  snap->pipeline = std::move(pipeline);
  snap->version = std::move(version);
  std::lock_guard<std::mutex> lock(mutex_);
  models_[name] = std::move(snap);
}

void ModelRegistry::load_checkpoint(
    const std::string& name, const diffusion::PipelineConfig& config,
    const std::vector<std::string>& class_names, const std::string& prefix,
    std::string version, const std::string& lora_path) {
  auto pipeline =
      std::make_shared<diffusion::TraceDiffusion>(config, class_names);
  pipeline->load(prefix);
  if (!lora_path.empty()) load_lora_adapter(*pipeline, lora_path);
  install(name, std::move(pipeline), std::move(version));
}

std::shared_ptr<const ModelSnapshot> ModelRegistry::snapshot(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = models_.find(name);
  return it == models_.end() ? nullptr : it->second;
}

bool ModelRegistry::remove(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return models_.erase(name) > 0;
}

std::vector<std::string> ModelRegistry::names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(models_.size());
  for (const auto& [name, snap] : models_) out.push_back(name);
  return out;
}

std::size_t ModelRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return models_.size();
}

std::vector<nn::Parameter*> lora_adapter_parameters(
    diffusion::TraceDiffusion& pipeline) {
  if (pipeline.config().unet.lora_rank == 0) {
    throw std::logic_error("lora_adapter_parameters: model has no LoRA rank");
  }
  std::vector<nn::Parameter*> params = pipeline.unet().lora_parameters();
  params.push_back(&pipeline.unet().class_embedding_table());
  return params;
}

void save_lora_adapter(diffusion::TraceDiffusion& pipeline,
                       const std::string& path) {
  nn::save_parameters(path, lora_adapter_parameters(pipeline));
}

void load_lora_adapter(diffusion::TraceDiffusion& pipeline,
                       const std::string& path) {
  nn::load_parameters(path, lora_adapter_parameters(pipeline));
}

}  // namespace repro::serve
