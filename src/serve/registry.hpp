// Model registry: named, versioned TraceDiffusion snapshots with atomic
// hot-swap.
//
// A snapshot is an immutable (pipeline, version) pair held by
// shared_ptr. install() atomically replaces the entry for a name;
// readers that already resolved a snapshot (a batch in flight) keep the
// old pipeline alive until they drop it — generation in flight always
// finishes on the checkpoint it started with. The version string is
// part of every result-cache key, so a hot-swap can never serve stale
// cached flows from a previous checkpoint.
//
// LoRA adapter selection: a registered model may layer an adapter-only
// checkpoint (the UNet's LoRA matrices + class embedding table, the
// exact parameter set fit_lora trains) over a shared base checkpoint —
// so "netflix-tuned" and "base" can coexist as registry entries that
// differ only in a few small adapter tensors.
#pragma once

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "diffusion/pipeline.hpp"

namespace repro::serve {

struct ModelSnapshot {
  std::shared_ptr<diffusion::TraceDiffusion> pipeline;
  std::string version;
  std::size_t num_classes = 0;
  /// Step counts the pipeline has distilled stages for (sorted; captured
  /// at install time). Admission rejects kDistilled requests asking for
  /// anything else, so a bad step count fails fast instead of in the
  /// model call.
  std::vector<std::size_t> distilled_steps;

  bool supports_distilled(std::size_t steps) const {
    return std::find(distilled_steps.begin(), distilled_steps.end(), steps) !=
           distilled_steps.end();
  }
};

class ModelRegistry {
 public:
  /// Atomically publishes `pipeline` (must be fitted or loaded) as
  /// `name`@`version`, replacing any previous entry for the name.
  void install(const std::string& name,
               std::shared_ptr<diffusion::TraceDiffusion> pipeline,
               std::string version);

  /// Constructs a pipeline from `config`/`class_names`, loads the
  /// TraceDiffusion checkpoint at `prefix` (see TraceDiffusion::save),
  /// optionally layers the LoRA adapter checkpoint at `lora_path`, and
  /// installs the result. Throws on checkpoint mismatch or I/O failure
  /// (the previous entry, if any, stays installed).
  void load_checkpoint(const std::string& name,
                       const diffusion::PipelineConfig& config,
                       const std::vector<std::string>& class_names,
                       const std::string& prefix, std::string version,
                       const std::string& lora_path = {});

  /// Current snapshot for `name`; nullptr when unknown. The returned
  /// snapshot stays valid (and its pipeline alive) for as long as the
  /// caller holds it, independent of later install() calls.
  std::shared_ptr<const ModelSnapshot> snapshot(
      const std::string& name) const;

  /// Removes `name`; in-flight holders keep their snapshot.
  bool remove(const std::string& name);

  std::vector<std::string> names() const;
  std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<const ModelSnapshot>> models_;
};

/// The adapter parameter set of `pipeline` (UNet LoRA matrices + class
/// embedding table — what fit_lora trains). Requires lora_rank > 0.
std::vector<nn::Parameter*> lora_adapter_parameters(
    diffusion::TraceDiffusion& pipeline);

/// Saves/loads ONLY the adapter parameter set, for layering fine-tuned
/// variants over a shared base checkpoint.
void save_lora_adapter(diffusion::TraceDiffusion& pipeline,
                       const std::string& path);
void load_lora_adapter(diffusion::TraceDiffusion& pipeline,
                       const std::string& path);

}  // namespace repro::serve
