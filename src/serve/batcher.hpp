// Micro-batching scheduler: coalesces compatible queued requests into
// one batched model call.
//
// Requests are compatible when they share a BatchKey — (model, class,
// sampler, steps, precision) — because those are exactly the parameters
// of the underlying generate_with_flow_seeds call; the per-flow seeds
// make the outputs independent of how requests were grouped. The max-batch /
// max-wait policy bounds latency under light load (a lone request waits
// at most max_wait for batch-mates) and saturates throughput under
// heavy load (batches fill to max_batch_flows immediately).
#pragma once

#include <vector>

#include "serve/queue.hpp"

namespace repro::serve {

struct BatchKey {
  std::string model;
  int class_id = 0;
  diffusion::SamplerKind sampler = diffusion::SamplerKind::kDdim;
  std::size_t steps = 0;
  nn::Precision precision = nn::Precision::kFp32;

  friend bool operator==(const BatchKey& a, const BatchKey& b) {
    return a.model == b.model && a.class_id == b.class_id &&
           a.sampler == b.sampler && a.steps == b.steps &&
           a.precision == b.precision;
  }
};

BatchKey batch_key_of(const GenerateRequest& request);

struct BatchPolicy {
  /// Flow budget of one batched model call (sum of request counts; the
  /// head request always dispatches even if it alone exceeds this).
  std::size_t max_batch_flows = 16;
  /// Seconds the oldest queued request may wait for batch-mates before
  /// the scheduler dispatches a partial batch. 0 = dispatch immediately.
  double max_wait = 0.002;
};

struct FormedBatch {
  BatchKey key;
  std::vector<Pending> batch;    ///< same-key requests, FIFO by priority
  std::vector<Pending> expired;  ///< deadline-expired, cancelled unserved
  std::size_t flows = 0;         ///< total flows across `batch`
};

class BatchScheduler {
 public:
  explicit BatchScheduler(BatchPolicy policy) : policy_(policy) {}

  const BatchPolicy& policy() const noexcept { return policy_; }

  /// Whether the queue head has waited long enough (or the backlog is
  /// deep enough) to justify dispatching now.
  bool should_dispatch(const RequestQueue& queue, double now) const;

  /// Sweeps deadline-expired requests out of the whole queue, then pops
  /// the head and gathers same-key batch-mates up to the flow budget.
  /// Returns an empty batch when the queue is (or becomes) empty.
  FormedBatch form(RequestQueue& queue, double now) const;

 private:
  BatchPolicy policy_;
};

}  // namespace repro::serve
