// Background pump thread for daemon/bench mode.
//
// The service itself is cooperatively driven (TraceService::pump());
// BackgroundWorker runs pump() on a dedicated thread, sleeping on a
// condition variable while idle and woken by submit(). This file
// (worker.{hpp,cpp}) is the ONLY serve/ translation unit allowed to
// create a raw std::thread (repro_lint RL002 exemption): the worker is
// a scheduler, not a data-path lane — all model math still runs under
// the deterministic parallel::thread_pool lane model, so generated bits
// are unaffected by this thread's scheduling.
#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>

namespace repro::serve {

class BackgroundWorker {
 public:
  /// `step` performs one unit of work, returning how many items it
  /// completed; the worker waits (up to `idle_wait_seconds`, or until
  /// notify()) whenever a step reports 0.
  BackgroundWorker(std::function<std::size_t()> step,
                   double idle_wait_seconds);
  ~BackgroundWorker();

  BackgroundWorker(const BackgroundWorker&) = delete;
  BackgroundWorker& operator=(const BackgroundWorker&) = delete;

  /// Wakes the worker (new work arrived).
  void notify();

  /// Stops the loop and joins the thread (idempotent).
  void stop();

 private:
  void loop();

  std::function<std::size_t()> step_;
  double idle_wait_seconds_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool work_hint_ = false;
  std::thread thread_;
};

}  // namespace repro::serve
