// NetShare/DoppelGANger-style GAN baseline over NetFlow records.
//
// Faithful to the architecture choices §2.3 criticizes:
//  * the flow category ("type") is generated as *just another field* — a
//    continuous scalar appended to the feature vector — "without
//    considering its impact on other fields' values";
//  * no stateful/protocol structure: the model sees only aggregate
//    flow-level features, so it cannot honour inter-packet constraints;
//  * a standard minimax GAN, which amplifies class imbalance through
//    mode-seeking behaviour (Figure 1's "GAN" series).
//
// A per-class variant (one generator per label) backs the paper's
// supplemental ablation ("even when generating traces by training a
// GAN-based model per class, there is negligible improvement").
#pragma once

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "gan/netflow.hpp"
#include "nn/activation.hpp"
#include "nn/linear.hpp"

namespace repro::gan {

struct GanConfig {
  std::size_t latent_dim = 16;
  std::size_t hidden_dim = 64;
  std::size_t num_classes = 11;
  std::size_t epochs = 200;
  std::size_t batch_size = 32;
  float lr_g = 1e-3f;
  float lr_d = 1e-3f;
  std::uint64_t seed = 99;
};

struct GanTrainStats {
  float final_d_loss = 0.0f;
  float final_g_loss = 0.0f;
  std::size_t steps = 0;
};

class NetFlowGan {
 public:
  explicit NetFlowGan(const GanConfig& config);

  /// Trains on real records (labels inside the records).
  GanTrainStats fit(const std::vector<NetFlowRecord>& real);

  /// Samples `count` synthetic records. The label of each sample is
  /// whatever the generator emitted in its label field — the class-
  /// coverage failure mode under test.
  std::vector<NetFlowRecord> sample(std::size_t count);

  /// Per-class distribution of the generator's label field over `count`
  /// samples (Figure 1 input).
  std::vector<double> label_distribution(std::size_t count);

 private:
  // The data vector the GAN models: features + normalized label scalar.
  static constexpr std::size_t kDataDim = NetFlowRecord::kFeatureCount + 1;

  std::vector<float> pack(const NetFlowRecord& record) const;
  NetFlowRecord unpack(const std::vector<float>& data) const;
  nn::Tensor generate_batch(std::size_t count);

  GanConfig config_;
  Rng rng_;
  // Generator: z -> hidden -> hidden -> data.
  nn::Linear g1_;
  nn::LeakyReLU g_act1_;
  nn::Linear g2_;
  nn::LeakyReLU g_act2_;
  nn::Linear g3_;
  // Discriminator: data -> hidden -> hidden -> logit.
  nn::Linear d1_;
  nn::LeakyReLU d_act1_;
  nn::Linear d2_;
  nn::LeakyReLU d_act2_;
  nn::Linear d3_;
  bool fitted_ = false;
};

/// The per-class ablation: one independent GAN per label, sampled with
/// the requested per-class counts.
class PerClassNetFlowGan {
 public:
  explicit PerClassNetFlowGan(const GanConfig& config);

  void fit(const std::vector<NetFlowRecord>& real);

  /// Samples `per_class[i]` records from class i's model, each labeled i.
  std::vector<NetFlowRecord> sample(const std::vector<std::size_t>& per_class);

 private:
  GanConfig config_;
  std::vector<std::unique_ptr<NetFlowGan>> models_;
};

}  // namespace repro::gan
