#include "gan/netflow.hpp"

#include <algorithm>
#include <cmath>

namespace repro::gan {
namespace {

// log1p scaling keeps the heavy-tailed count features in a range a small
// GAN can model.
float squash(double v) { return static_cast<float>(std::log1p(std::max(v, 0.0))); }
double unsquash(float v) { return std::expm1(std::max(v, 0.0f)); }

}  // namespace

std::vector<float> NetFlowRecord::features() const {
  std::vector<float> f(kFeatureCount, 0.0f);
  f[0] = protocol == net::IpProto::kTcp ? 1.0f : 0.0f;
  f[1] = protocol == net::IpProto::kUdp ? 1.0f : 0.0f;
  f[2] = protocol == net::IpProto::kIcmp ? 1.0f : 0.0f;
  f[3] = squash(duration);
  f[4] = squash(packet_count);
  f[5] = squash(byte_count);
  f[6] = squash(mean_packet_size);
  f[7] = squash(mean_interarrival * 1000.0);  // milliseconds
  f[8] = static_cast<float>(upstream_fraction);
  return f;
}

std::vector<std::string> NetFlowRecord::feature_names() {
  return {"proto_tcp",       "proto_udp",      "proto_icmp",
          "log_duration",    "log_pkts",       "log_bytes",
          "log_mean_size",   "log_mean_iat_ms", "up_fraction"};
}

NetFlowRecord to_netflow(const net::Flow& flow) {
  NetFlowRecord r;
  r.label = flow.label;
  r.protocol = flow.dominant_protocol();
  r.duration = flow.duration();
  r.packet_count = static_cast<double>(flow.packet_count());
  r.byte_count = static_cast<double>(flow.byte_count());
  r.mean_packet_size =
      r.packet_count > 0 ? r.byte_count / r.packet_count : 0.0;
  r.mean_interarrival =
      r.packet_count > 1 ? r.duration / (r.packet_count - 1) : 0.0;
  if (!flow.packets.empty()) {
    const std::uint32_t initiator = flow.packets.front().ip.src_addr;
    std::size_t up = 0;
    for (const auto& pkt : flow.packets) {
      if (pkt.ip.src_addr == initiator) ++up;
    }
    r.upstream_fraction =
        static_cast<double>(up) / static_cast<double>(flow.packets.size());
  }
  return r;
}

std::vector<NetFlowRecord> to_netflow(const std::vector<net::Flow>& flows) {
  std::vector<NetFlowRecord> records;
  records.reserve(flows.size());
  for (const auto& flow : flows) records.push_back(to_netflow(flow));
  return records;
}

NetFlowRecord from_features(const std::vector<float>& features, int label) {
  NetFlowRecord r;
  r.label = label;
  const float tcp = features[0], udp = features[1], icmp = features[2];
  if (tcp >= udp && tcp >= icmp) {
    r.protocol = net::IpProto::kTcp;
  } else if (udp >= icmp) {
    r.protocol = net::IpProto::kUdp;
  } else {
    r.protocol = net::IpProto::kIcmp;
  }
  r.duration = unsquash(features[3]);
  r.packet_count = unsquash(features[4]);
  r.byte_count = unsquash(features[5]);
  r.mean_packet_size = unsquash(features[6]);
  r.mean_interarrival = unsquash(features[7]) / 1000.0;
  r.upstream_fraction = std::clamp(features[8], 0.0f, 1.0f);
  return r;
}

}  // namespace repro::gan
