#include "gan/netflow_gan.hpp"

#include <algorithm>
#include <cmath>

#include "common/telemetry/trace.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"

namespace repro::gan {

NetFlowGan::NetFlowGan(const GanConfig& config)
    : config_(config),
      rng_(config.seed),
      g1_(config.latent_dim, config.hidden_dim, rng_, true, "gan.g1"),
      g2_(config.hidden_dim, config.hidden_dim, rng_, true, "gan.g2"),
      g3_(config.hidden_dim, kDataDim, rng_, true, "gan.g3"),
      d1_(kDataDim, config.hidden_dim, rng_, true, "gan.d1"),
      d2_(config.hidden_dim, config.hidden_dim, rng_, true, "gan.d2"),
      d3_(config.hidden_dim, 1, rng_, true, "gan.d3") {}

std::vector<float> NetFlowGan::pack(const NetFlowRecord& record) const {
  std::vector<float> data = record.features();
  // The criticized design: the class label rides along as one more
  // continuous field, normalized to [0, 1].
  const float norm = config_.num_classes > 1
                         ? static_cast<float>(record.label) /
                               static_cast<float>(config_.num_classes - 1)
                         : 0.0f;
  data.push_back(norm);
  return data;
}

NetFlowRecord NetFlowGan::unpack(const std::vector<float>& data) const {
  std::vector<float> features(data.begin(),
                              data.begin() + NetFlowRecord::kFeatureCount);
  const float norm = data.back();
  const int label = static_cast<int>(std::lround(
      std::clamp(norm, 0.0f, 1.0f) *
      static_cast<float>(config_.num_classes - 1)));
  return from_features(features, label);
}

nn::Tensor NetFlowGan::generate_batch(std::size_t count) {
  nn::Tensor z({count, config_.latent_dim});
  for (std::size_t i = 0; i < z.size(); ++i) {
    z[i] = static_cast<float>(rng_.gaussian());
  }
  return g3_.forward(g_act2_.forward(g2_.forward(g_act1_.forward(g1_.forward(z)))));
}

GanTrainStats NetFlowGan::fit(const std::vector<NetFlowRecord>& real) {
  GanTrainStats stats;
  if (real.empty()) return stats;
  REPRO_SPAN("gan.fit");
  telemetry::count("gan.records_fit", real.size());
  std::vector<std::vector<float>> data;
  data.reserve(real.size());
  for (const auto& r : real) data.push_back(pack(r));

  std::vector<nn::Parameter*> g_params;
  for (nn::Linear* l : {&g1_, &g2_, &g3_}) {
    for (auto* p : l->parameters()) g_params.push_back(p);
  }
  std::vector<nn::Parameter*> d_params;
  for (nn::Linear* l : {&d1_, &d2_, &d3_}) {
    for (auto* p : l->parameters()) d_params.push_back(p);
  }
  nn::Adam::Config gc, dc;
  gc.lr = config_.lr_g;
  gc.beta1 = 0.5f;  // standard GAN practice
  dc.lr = config_.lr_d;
  dc.beta1 = 0.5f;
  nn::Adam g_opt(g_params, gc);
  nn::Adam d_opt(d_params, dc);

  const std::size_t batch = std::min(config_.batch_size, data.size());
  auto d_forward = [&](const nn::Tensor& x) {
    return d3_.forward(d_act2_.forward(d2_.forward(d_act1_.forward(d1_.forward(x)))));
  };
  auto d_backward = [&](const nn::Tensor& grad) {
    return d1_.backward(d_act1_.backward(d2_.backward(d_act2_.backward(d3_.backward(grad)))));
  };

  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    const auto perm = rng_.permutation(data.size());
    for (std::size_t start = 0; start + batch <= data.size();
         start += batch) {
      // --- Discriminator step: real up, fake down. ---
      nn::Tensor real_batch({batch, kDataDim});
      for (std::size_t i = 0; i < batch; ++i) {
        const auto& row = data[perm[start + i]];
        std::copy(row.begin(), row.end(), real_batch.data() + i * kDataDim);
      }
      nn::Tensor fake_batch = generate_batch(batch);

      for (auto* p : d_params) p->zero_grad();
      nn::Tensor grad;
      nn::Tensor logits_real = d_forward(real_batch);
      const float loss_real = nn::bce_with_logits_loss(
          logits_real, nn::Tensor::full({batch, 1}, 1.0f), grad);
      d_backward(grad);
      nn::Tensor logits_fake = d_forward(fake_batch);
      nn::Tensor grad_fake;
      const float loss_fake = nn::bce_with_logits_loss(
          logits_fake, nn::Tensor::zeros({batch, 1}), grad_fake);
      d_backward(grad_fake);
      d_opt.step();
      stats.final_d_loss = loss_real + loss_fake;

      // --- Generator step: non-saturating loss. ---
      for (auto* p : g_params) p->zero_grad();
      for (auto* p : d_params) p->zero_grad();
      nn::Tensor fake2 = generate_batch(batch);
      nn::Tensor logits2 = d_forward(fake2);
      nn::Tensor grad_g;
      stats.final_g_loss = nn::bce_with_logits_loss(
          logits2, nn::Tensor::full({batch, 1}, 1.0f), grad_g);
      nn::Tensor grad_data = d_backward(grad_g);
      g1_.backward(g_act1_.backward(
          g2_.backward(g_act2_.backward(g3_.backward(grad_data)))));
      g_opt.step();
      ++stats.steps;
    }
  }
  fitted_ = true;
  return stats;
}

std::vector<NetFlowRecord> NetFlowGan::sample(std::size_t count) {
  REPRO_SPAN("gan.sample");
  telemetry::count("gan.records_sampled", count);
  std::vector<NetFlowRecord> out;
  out.reserve(count);
  const std::size_t chunk = 64;
  while (out.size() < count) {
    const std::size_t take = std::min(chunk, count - out.size());
    nn::Tensor batch = generate_batch(take);
    for (std::size_t i = 0; i < take; ++i) {
      std::vector<float> row(batch.data() + i * kDataDim,
                             batch.data() + (i + 1) * kDataDim);
      out.push_back(unpack(row));
    }
  }
  return out;
}

std::vector<double> NetFlowGan::label_distribution(std::size_t count) {
  std::vector<double> counts(config_.num_classes, 0.0);
  for (const auto& r : sample(count)) {
    if (r.label >= 0 &&
        static_cast<std::size_t>(r.label) < config_.num_classes) {
      counts[static_cast<std::size_t>(r.label)] += 1.0;
    }
  }
  return counts;
}

PerClassNetFlowGan::PerClassNetFlowGan(const GanConfig& config)
    : config_(config) {}

void PerClassNetFlowGan::fit(const std::vector<NetFlowRecord>& real) {
  models_.clear();
  for (std::size_t cls = 0; cls < config_.num_classes; ++cls) {
    std::vector<NetFlowRecord> subset;
    for (const auto& r : real) {
      if (r.label == static_cast<int>(cls)) subset.push_back(r);
    }
    GanConfig cfg = config_;
    cfg.seed = config_.seed + cls + 1;
    auto model = std::make_unique<NetFlowGan>(cfg);
    if (!subset.empty()) model->fit(subset);
    models_.push_back(std::move(model));
  }
}

std::vector<NetFlowRecord> PerClassNetFlowGan::sample(
    const std::vector<std::size_t>& per_class) {
  std::vector<NetFlowRecord> out;
  for (std::size_t cls = 0; cls < per_class.size() && cls < models_.size();
       ++cls) {
    auto samples = models_[cls]->sample(per_class[cls]);
    for (auto& r : samples) {
      r.label = static_cast<int>(cls);  // label is known per model
      out.push_back(std::move(r));
    }
  }
  return out;
}

}  // namespace repro::gan
