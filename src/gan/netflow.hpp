// NetFlow-style flow records: the coarse-grained representation the
// GAN baseline generates and the "NetFlow" rows of Table 2 classify on.
//
// Matching the paper's preprocessing footnote, overfitting-prone fields
// (IP addresses, port numbers, flow start time) are excluded; what
// remains are the aggregate fields NetShare generates: protocol,
// duration, packet count, byte count, and derived statistics.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "net/flow.hpp"

namespace repro::gan {

/// One flow-level record. All experiment paths (real extraction, GAN
/// output, RF features) go through this struct.
struct NetFlowRecord {
  // One-hot-able protocol of the flow (dominant protocol).
  net::IpProto protocol = net::IpProto::kTcp;
  double duration = 0.0;       // seconds
  double packet_count = 0.0;
  double byte_count = 0.0;
  double mean_packet_size = 0.0;
  double mean_interarrival = 0.0;
  double upstream_fraction = 0.0;  // packets from the flow initiator
  int label = -1;

  /// Dense numeric feature vector (protocol one-hot + scaled scalars);
  /// used by both the GAN (as its data space) and the RF NetFlow mode.
  std::vector<float> features() const;

  static constexpr std::size_t kFeatureCount = 9;
  static std::vector<std::string> feature_names();
};

/// Extracts the record for a labeled flow.
NetFlowRecord to_netflow(const net::Flow& flow);

/// Extracts records for a whole dataset.
std::vector<NetFlowRecord> to_netflow(const std::vector<net::Flow>& flows);

/// Rebuilds a record from a feature vector (inverse of features();
/// protocol = arg-max of the one-hot block, scalars unscaled). Used to
/// materialize GAN samples.
NetFlowRecord from_features(const std::vector<float>& features, int label);

}  // namespace repro::gan
