// §2.3 supplemental ablation — "even when generating traces by training
// a GAN-based model per class, there is negligible improvement, e.g., we
// still observe ~20% accuracy in micro-level classification when the
// model is trained on synthetic and tested on real NetFlow data."
//
// Compares Synthetic/Real micro accuracy for (a) the joint GAN whose
// label rides along as a feature and (b) one GAN trained per class.
#include "bench_common.hpp"

#include "eval/report.hpp"
#include "ml/split.hpp"

using namespace repro;

int main() {
  bench::Scale scale;
  bench::BenchReport report("ablation_gan_per_class",
                            "§2.3 per-class GAN ablation (~20% Syn/Real "
                            "micro)");

  report.stage("build_dataset");
  Rng rng(1);
  const flowgen::Dataset real =
      flowgen::build_table1_dataset(scale.flows_per_class, rng);
  std::vector<std::size_t> train_idx, test_idx;
  Rng split_rng(2);
  ml::stratified_split_indices(real.micro_labels(), 0.2, split_rng,
                               train_idx, test_idx);
  std::vector<net::Flow> train_flows, test_flows;
  for (std::size_t i : train_idx) train_flows.push_back(real.flows[i]);
  for (std::size_t i : test_idx) test_flows.push_back(real.flows[i]);
  const auto train_records = gan::to_netflow(train_flows);
  const auto test_records = gan::to_netflow(test_flows);
  const eval::ScenarioConfig sc = bench::scenario_config(scale);

  const std::size_t syn_total = flowgen::kNumApps * scale.syn_per_class;

  // --- Joint GAN (label as just another feature). ---
  report.stage("fit_joint_gan");
  gan::NetFlowGan joint(bench::gan_config(scale));
  std::printf("training joint GAN...\n");
  joint.fit(train_records);
  const auto joint_syn = joint.sample(syn_total);
  const auto joint_result = eval::run_cross_scenario_netflow(
      "Synthetic/Real (joint GAN)", joint_syn, test_records, sc);

  // --- Per-class GANs. ---
  report.stage("fit_per_class_gans");
  gan::PerClassNetFlowGan per_class(bench::gan_config(scale));
  std::printf("training 11 per-class GANs...\n");
  per_class.fit(train_records);
  const auto per_class_syn = per_class.sample(
      std::vector<std::size_t>(flowgen::kNumApps, scale.syn_per_class));
  const auto per_class_result = eval::run_cross_scenario_netflow(
      "Synthetic/Real (per-class GAN)", per_class_syn, test_records, sc);

  // Reference: real/real on NetFlow.
  report.stage("evaluate");
  const auto real_result =
      eval::run_real_real(real, eval::Granularity::kNetFlow, sc);

  std::vector<std::vector<std::string>> rows = {
      {"Real/Real (NetFlow reference)", eval::fmt(real_result.macro_accuracy),
       eval::fmt(real_result.micro_accuracy)},
      {"Synthetic/Real, joint GAN", eval::fmt(joint_result.macro_accuracy),
       eval::fmt(joint_result.micro_accuracy)},
      {"Synthetic/Real, per-class GAN",
       eval::fmt(per_class_result.macro_accuracy),
       eval::fmt(per_class_result.micro_accuracy)},
  };
  std::printf("\n%s\n",
              eval::format_table({"scenario", "macro acc", "micro acc"}, rows)
                  .c_str());
  std::printf("paper: per-class GAN stays ~0.20 micro, far below the "
              "Real/Real reference.\n");

  report.note("joint_micro", joint_result.micro_accuracy);
  report.note("per_class_micro", per_class_result.micro_accuracy);
  report.note("real_real_micro", real_result.micro_accuracy);
  const bool shape =
      per_class_result.micro_accuracy < real_result.micro_accuracy - 0.2;
  std::printf("shape check: per-class GAN well below reference ... %s\n",
              shape ? "yes" : "NO");
  return shape ? 0 : 1;
}
