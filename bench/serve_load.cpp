// Serving-layer load bench (src/serve): measures how much throughput
// the micro-batching scheduler recovers over one-at-a-time serving, and
// demonstrates bounded-queue backpressure under an open-loop burst.
//
// Stages:
//   train              fit the bench-scale pipeline once (not measured)
//   baseline_single    closed loop through the service, max_batch=1 —
//                      every request is its own model call
//   closed_loop_batched same request stream, max_batch=REPRO_SERVE_BATCH
//                      — same-key requests coalesce into one batched
//                      sample_latents + decode_matrices call
//   closed_loop_traced same as batched but with telemetry spans on and
//                      the flight recorder armed — measures tracing
//                      overhead and proves 100% timeline coverage
//   open_loop_overload burst submissions into a tiny queue: typed
//                      queue-full rejects, no blocking, accepted work
//                      still completes
//   open_loop_socket   the same open-loop burst through the TCP
//                      front-end (src/serve/net) at 1, 2, and 8 client
//                      connections over REPRO_SERVE_LANES sharded
//                      worker lanes — client-side p50/p95/p99, flows/s,
//                      and the wire-visible reject rate per conn count
//
// Results: flows_per_s_single, flows_per_s_served, speedup (the
// acceptance headline), open-loop accept/reject counts, and latency
// percentiles; the metrics block carries the serve.* counters plus the
// queue-depth gauge and batch-size histogram from ServiceStats.
//
// Interpreting speedup: micro-batching wins twice — (a) per-call
// amortization (one weight-panel pack + dispatch per GEMM instead of
// one per request; measures ~1.5x regardless of core count) and (b)
// lane scaling (a [cout, batch*length] GEMM panel is wide enough for
// REPRO_THREADS lanes to split productively, while a single request's
// panel is not). The >=4x acceptance target at REPRO_THREADS=4 needs
// (a)*(b), i.e. at least 4 physical cores; on a single-core host the
// lanes timeshare one CPU and only (a) is visible. The "threads" field
// in BENCH_serve_load.json records the lane count of the run.
//
// Knobs: REPRO_SERVE_REQUESTS (48) single-flow requests per measured
// stage, REPRO_SERVE_BATCH (16) max flows per model call,
// REPRO_DDIM_STEPS / REPRO_PACKETS as everywhere else.
#include <algorithm>
#include <chrono>
#include <future>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "serve/net/client.hpp"
#include "serve/net/server.hpp"
#include "serve/observe/inspect.hpp"
#include "serve/service.hpp"
#include "serve/shard.hpp"

using namespace repro;

namespace {

std::shared_ptr<diffusion::TraceDiffusion> train_pipeline() {
  bench::Scale scale;
  scale.packets = env_size("REPRO_PACKETS", 16);
  diffusion::PipelineConfig cfg = bench::pipeline_config(scale);
  // Throughput depends on architecture, not fit quality: train briefly.
  cfg.ae_epochs = 4;
  cfg.diffusion_epochs = 2;
  cfg.control_epochs = 1;
  cfg.seed = 11;
  auto pipeline = std::make_shared<diffusion::TraceDiffusion>(
      cfg, std::vector<std::string>{"netflix", "teams"});
  Rng rng(1);
  flowgen::Dataset ds;
  for (int i = 0; i < 6; ++i) {
    net::Flow a =
        flowgen::generate_flow(flowgen::App::kNetflix, scale.packets, rng);
    a.label = 0;
    ds.flows.push_back(std::move(a));
    net::Flow b =
        flowgen::generate_flow(flowgen::App::kTeams, scale.packets, rng);
    b.label = 1;
    ds.flows.push_back(std::move(b));
  }
  pipeline->fit(ds);
  return pipeline;
}

struct LoadResult {
  double flows_per_s = 0.0;
  std::size_t flows = 0;
  std::size_t timelines = 0;           ///< traced runs: requests in dump
  std::size_t timelines_complete = 0;  ///< traced runs: full timelines
};

/// Closed-loop driver: submits `requests` single-flow requests in waves
/// of `max_batch` and drains the service after each wave, so the
/// batcher always has a full window of coalescable material. All model
/// work happens on this thread inside drain() — the measured rate is
/// pure serving throughput, no consumer/producer scheduling noise.
LoadResult run_closed_loop(serve::ModelRegistry& registry,
                           std::size_t requests, std::size_t max_batch,
                           std::size_t steps, std::uint64_t seed_base,
                           bool traced = false) {
  serve::ServiceConfig cfg;
  cfg.queue_capacity = requests + 1;  // admission is not under test here
  cfg.batch.max_batch_flows = max_batch;
  cfg.cache_capacity = 0;  // unique seeds: a cache would only add probes
  cfg.flightrec_force = traced;
  serve::TraceService service(registry, cfg);

  std::vector<std::shared_future<serve::Response>> responses;
  responses.reserve(requests);
  std::size_t submitted = 0;
  const auto t0 = std::chrono::steady_clock::now();
  while (submitted < requests) {
    const std::size_t wave =
        std::min(max_batch, requests - submitted);
    for (std::size_t w = 0; w < wave; ++w, ++submitted) {
      serve::GenerateRequest req;
      req.class_id = static_cast<int>(submitted % 2);
      req.seed = seed_base + submitted;
      req.count = 1;
      req.ddim_steps = steps;
      const auto result = service.submit(req);
      if (result.accepted) responses.push_back(result.response);
    }
    service.drain();
  }
  LoadResult out;
  for (auto& response : responses) {
    const serve::Response r = response.get();
    if (r.status == serve::ResponseStatus::kOk) out.flows += r.flows.size();
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (secs > 0.0) out.flows_per_s = static_cast<double>(out.flows) / secs;
  if (traced) {
    // Reconstruction runs after the clock stops — dump/parse cost is
    // not part of the measured serving rate.
    const auto dump = serve::observe::parse_flight_dump(
        service.flight_recorder().dump_json());
    if (dump.has_value()) {
      const serve::observe::InspectReport report =
          serve::observe::reconstruct(dump->events);
      out.timelines = report.requests.size();
      out.timelines_complete = report.complete;
    }
  }
  return out;
}

struct OverloadResult {
  std::size_t accepted = 0;
  std::size_t rejected_full = 0;
  std::size_t completed = 0;
};

/// Open-loop burst: fire `burst` submissions at a `capacity`-slot queue
/// without consuming. Admission must answer every request immediately —
/// typed queue-full rejects past capacity, no blocking — and everything
/// accepted must still complete once the service drains.
OverloadResult run_open_loop_overload(serve::ModelRegistry& registry,
                                      std::size_t burst,
                                      std::size_t capacity,
                                      std::size_t steps) {
  serve::ServiceConfig cfg;
  cfg.queue_capacity = capacity;
  cfg.batch.max_batch_flows = capacity;
  cfg.cache_capacity = 0;
  serve::TraceService service(registry, cfg);

  OverloadResult out;
  std::vector<std::shared_future<serve::Response>> responses;
  for (std::size_t i = 0; i < burst; ++i) {
    serve::GenerateRequest req;
    req.class_id = static_cast<int>(i % 2);
    req.seed = 0xb00f + i;
    req.count = 1;
    req.ddim_steps = steps;
    const auto result = service.submit(req);
    if (result.accepted) {
      ++out.accepted;
      responses.push_back(result.response);
    } else if (result.reject == serve::RejectReason::kQueueFull) {
      ++out.rejected_full;
    }
  }
  service.drain();
  for (auto& response : responses) {
    if (response.get().status == serve::ResponseStatus::kOk) ++out.completed;
  }
  return out;
}

struct Percentiles {
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Linear-interpolated quantiles over client-side latencies, in ms.
Percentiles percentiles_ms(std::vector<double>& seconds) {
  Percentiles out;
  if (seconds.empty()) return out;
  std::sort(seconds.begin(), seconds.end());
  const auto at = [&seconds](double q) {
    const double pos = q * static_cast<double>(seconds.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, seconds.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return (seconds[lo] * (1.0 - frac) + seconds[hi] * frac) * 1e3;
  };
  out.p50 = at(0.5);
  out.p95 = at(0.95);
  out.p99 = at(0.99);
  return out;
}

struct SocketResult {
  std::size_t ok = 0;
  std::size_t rejected = 0;  ///< error frames (queue_full) + cancels
  std::size_t flows = 0;
  double flows_per_s = 0.0;
  Percentiles latency;
};

/// Open-loop burst through the socket front-end: `conns` pipelined
/// client connections fire `requests` frames without waiting, then the
/// replies are collected round-robin. Latency is the CLIENT's view —
/// burst start to reply arrival, wire decode included — which is what
/// a user of `repro_served --listen` actually experiences.
SocketResult run_open_loop_socket(serve::ModelRegistry& registry,
                                  std::size_t conns, std::size_t requests,
                                  std::size_t max_batch, std::size_t steps,
                                  std::size_t lanes,
                                  std::uint64_t seed_base) {
  serve::ShardedConfig cfg;
  cfg.lanes = lanes;
  // Sized so a full burst into one shard can overflow: the wire-level
  // queue_full reject path is part of what this stage measures.
  cfg.service.queue_capacity = requests / 2 + 1;
  cfg.service.batch.max_batch_flows = max_batch;
  cfg.service.cache_capacity = 0;
  serve::ShardedService sharded(registry, cfg);
  serve::wire::SocketServer server(sharded, serve::wire::ServerConfig{});
  sharded.start();
  server.start();

  SocketResult out;
  {
    std::vector<std::unique_ptr<serve::wire::BlockingClient>> clients;
    std::vector<std::size_t> outstanding(conns, 0);
    clients.reserve(conns);
    for (std::size_t c = 0; c < conns; ++c) {
      clients.push_back(
          std::make_unique<serve::wire::BlockingClient>(server.port()));
    }
    const auto t0 = std::chrono::steady_clock::now();
    const auto since_start = [&t0] {
      return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           t0)
          .count();
    };
    for (std::size_t i = 0; i < requests; ++i) {
      serve::GenerateRequest req;
      req.class_id = static_cast<int>(i % 2);
      req.seed = seed_base + i;
      req.count = 1;
      req.ddim_steps = steps;
      clients[i % conns]->send(req);
      ++outstanding[i % conns];
    }

    std::vector<double> arrivals;
    arrivals.reserve(requests);
    std::size_t remaining = requests;
    double last = 0.0;
    while (remaining > 0 && since_start() < 120.0) {
      for (std::size_t c = 0; c < conns; ++c) {
        if (outstanding[c] == 0) continue;
        if (clients[c]->eof()) {  // server gone: stop waiting on it
          remaining -= outstanding[c];
          outstanding[c] = 0;
          continue;
        }
        const auto reply = clients[c]->read_reply(0.005);
        if (!reply) continue;
        --outstanding[c];
        --remaining;
        const double t = since_start();
        if (reply->ok() && reply->response->status == "ok") {
          ++out.ok;
          out.flows += reply->response->flows.size();
          arrivals.push_back(t);
          last = t;
        } else {
          ++out.rejected;
        }
      }
    }
    if (last > 0.0) {
      out.flows_per_s = static_cast<double>(out.flows) / last;
    }
    out.latency = percentiles_ms(arrivals);
  }
  server.stop();
  sharded.stop();
  return out;
}

}  // namespace

int main() {
  bench::BenchReport report(
      "serve_load",
      "serving-layer throughput: micro-batching vs single-request");
  bench::Scale scale;
  const std::size_t requests = env_size("REPRO_SERVE_REQUESTS", 48);
  const std::size_t max_batch = env_size("REPRO_SERVE_BATCH", 16);
  const std::size_t steps = scale.ddim_steps;

  report.stage("train");
  serve::ModelRegistry registry;
  registry.install("default", train_pipeline(), "bench-v1");

  report.stage("baseline_single");
  const LoadResult single =
      run_closed_loop(registry, requests, /*max_batch=*/1, steps, 10'000);
  std::printf("single-request: %zu flows, %.2f flows/s\n", single.flows,
              single.flows_per_s);

  report.stage("closed_loop_batched");
  const LoadResult served =
      run_closed_loop(registry, requests, max_batch, steps, 20'000);
  std::printf("batched (max_batch=%zu): %zu flows, %.2f flows/s\n",
              max_batch, served.flows, served.flows_per_s);

  report.stage("closed_loop_traced");
  const bool telemetry_was_on = telemetry::enabled();
  telemetry::set_enabled(true);
  const LoadResult traced = run_closed_loop(registry, requests, max_batch,
                                            steps, 30'000, /*traced=*/true);
  telemetry::set_enabled(telemetry_was_on);
  const double trace_overhead_pct =
      served.flows_per_s > 0.0
          ? (served.flows_per_s - traced.flows_per_s) / served.flows_per_s *
                100.0
          : 0.0;
  std::printf("traced (spans + flight recorder): %zu flows, %.2f flows/s "
              "(%.1f%% overhead), %zu/%zu timelines complete\n",
              traced.flows, traced.flows_per_s, trace_overhead_pct,
              traced.timelines_complete, traced.timelines);

  report.stage("open_loop_overload");
  const OverloadResult overload = run_open_loop_overload(
      registry, /*burst=*/4 * max_batch, /*capacity=*/max_batch / 2 + 1,
      steps);
  std::printf("open-loop burst: %zu accepted, %zu queue-full rejects, "
              "%zu completed\n",
              overload.accepted, overload.rejected_full, overload.completed);

  report.stage("open_loop_socket");
  const std::size_t lanes = env_size(kEnvServeLanes, 2);
  bool socket_ok = true;
  for (const std::size_t conns :
       {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    const SocketResult sock =
        run_open_loop_socket(registry, conns, requests, max_batch, steps,
                             lanes, 40'000 + conns * 1'000);
    const double reject_rate =
        requests > 0
            ? static_cast<double>(sock.rejected) /
                  static_cast<double>(requests)
            : 0.0;
    std::printf("socket open-loop (%zu conns, %zu lanes): %zu ok, %zu "
                "rejected, %.2f flows/s, p50=%.1fms p95=%.1fms "
                "p99=%.1fms\n",
                conns, lanes, sock.ok, sock.rejected, sock.flows_per_s,
                sock.latency.p50, sock.latency.p95, sock.latency.p99);
    char prefix[32];
    std::snprintf(prefix, sizeof prefix, "socket_c%zu_", conns);
    report.note(std::string(prefix) + "flows_per_s", sock.flows_per_s);
    report.note(std::string(prefix) + "reject_rate", reject_rate);
    report.note(std::string(prefix) + "p50_ms", sock.latency.p50);
    report.note(std::string(prefix) + "p95_ms", sock.latency.p95);
    report.note(std::string(prefix) + "p99_ms", sock.latency.p99);
    // Conservation over the wire: every frame answered, typed ok or
    // typed reject — nothing dropped, nothing hung.
    if (sock.ok == 0 || sock.ok + sock.rejected != requests) {
      socket_ok = false;
    }
  }
  report.note("socket_lanes", static_cast<double>(lanes));

  const double speedup = single.flows_per_s > 0.0
                             ? served.flows_per_s / single.flows_per_s
                             : 0.0;
  std::printf("micro-batching speedup: %.2fx\n", speedup);

  // Latency percentiles from the service histograms (all three services
  // share the process-wide ServiceStats instruments).
  auto& registry_t = telemetry::Registry::instance();
  const auto latency =
      registry_t.histogram("serve.latency.total_seconds",
                           telemetry::Histogram::duration_bounds())
          .snapshot();
  report.note("requests", static_cast<double>(requests));
  report.note("batch_flows", static_cast<double>(max_batch));
  report.note("flows_per_s_single", single.flows_per_s);
  report.note("flows_per_s_served", served.flows_per_s);
  report.note("flows_per_s_traced", traced.flows_per_s);
  report.note("trace_overhead_pct", trace_overhead_pct);
  report.note("trace_timelines", static_cast<double>(traced.timelines));
  report.note("trace_timelines_complete",
              static_cast<double>(traced.timelines_complete));
  report.note("speedup", speedup);
  report.note("overload_accepted", static_cast<double>(overload.accepted));
  report.note("overload_rejected_queue_full",
              static_cast<double>(overload.rejected_full));
  report.note("overload_completed", static_cast<double>(overload.completed));
  report.note("latency_p50_ms", latency.quantile(0.5) * 1e3);
  report.note("latency_p95_ms", latency.quantile(0.95) * 1e3);
  report.note("latency_p99_ms", latency.quantile(0.99) * 1e3);

  const bool overload_ok =
      overload.rejected_full > 0 && overload.completed == overload.accepted;
  const bool coverage_ok = traced.timelines == requests &&
                           traced.timelines_complete == requests;
  if (single.flows == 0 || served.flows == 0 || !overload_ok) {
    std::fprintf(stderr, "serve_load: FAILED (served nothing or dropped "
                         "accepted work)\n");
    return 1;
  }
  if (!coverage_ok) {
    std::fprintf(stderr,
                 "serve_load: FAILED (flight recorder covered %zu/%zu "
                 "timelines, %zu complete)\n",
                 traced.timelines, requests, traced.timelines_complete);
    return 1;
  }
  if (!socket_ok) {
    std::fprintf(stderr, "serve_load: FAILED (socket stage dropped or "
                         "hung wire requests)\n");
    return 1;
  }
  return 0;
}
