// Replayability experiment (§2.3 / §3.2 / §4): can synthetic traces
// drive a *stateful* network function?
//
// The paper argues NetShare-style output "cannot be reliably replayed to
// test network functions" because it does not honour inter-packet
// protocol constraints — it produces flow records, not packets, so there
// is literally nothing to replay. The diffusion pipeline produces raw
// pcap bytes; this bench replays real and synthetic traffic through a
// middlebox chain (NAT -> conntrack firewall -> flow counter) and
// reports the strict-conntrack TCP acceptance rate plus end-to-end
// delivery.
#include "bench_common.hpp"

#include "eval/report.hpp"
#include "net/pcap.hpp"
#include "replay/conntrack.hpp"
#include "replay/functions.hpp"

using namespace repro;

namespace {

struct ReplayRow {
  std::string name;
  double tcp_acceptance = 0.0;
  double delivery = 0.0;
  std::size_t handshakes = 0;
  std::size_t packets = 0;
};

ReplayRow run_chain(const std::string& name,
                    const std::vector<net::Flow>& flows) {
  // LAN-side tap ordering: the stateful firewall sees the capture's
  // original (pre-NAT) 5-tuples; the masquerading NAT sits at egress.
  replay::ReplayEngine engine;
  auto conntrack = std::make_unique<replay::ConntrackFunction>();
  replay::ConntrackFunction* tracker = conntrack.get();
  engine.add_function(std::move(conntrack));
  engine.add_function(std::make_unique<replay::SourceNat>(
      net::ipv4_from_string("203.0.113.1")));
  engine.add_function(std::make_unique<replay::FlowCounter>());

  const auto packets = net::flatten_flows(flows);
  const replay::ReplayReport report = engine.replay(packets);
  ReplayRow row;
  row.name = name;
  row.packets = report.input_packets;
  row.tcp_acceptance = tracker->stats().tcp_acceptance();
  row.delivery = report.input_packets
                     ? static_cast<double>(report.delivered_packets) /
                           static_cast<double>(report.input_packets)
                     : 0.0;
  row.handshakes = tracker->stats().handshakes_completed;
  return row;
}

}  // namespace

int main() {
  bench::Scale scale;
  bench::BenchReport report("replay_validity",
                            "replayable-trace experiment (stateful conntrack "
                            "acceptance, §2.3/§3.2/§4)");

  report.stage("build_dataset");
  Rng rng(1);
  const flowgen::Dataset real =
      flowgen::build_table1_dataset(scale.flows_per_class, rng);

  report.stage("fit_diffusion");
  diffusion::TraceDiffusion pipeline(bench::pipeline_config(scale),
                                     bench::class_names());
  Rng cap_rng(2);
  std::printf("fitting diffusion pipeline...\n");
  pipeline.fit(real.sample_per_class(scale.train_per_class, cap_rng));
  report.stage("generate_synthetic");
  const flowgen::Dataset ours = pipeline.generate_dataset(
      std::vector<std::size_t>(flowgen::kNumApps, scale.syn_per_class),
      bench::generate_options(scale));

  // Also an unconstrained variant (no control, no projection): how much
  // of the replayability comes from the constraint machinery?
  diffusion::GenerateOptions raw_opts = bench::generate_options(scale);
  raw_opts.use_control = false;
  raw_opts.constraint = diffusion::ConstraintMode::kOff;
  const flowgen::Dataset ours_raw = pipeline.generate_dataset(
      std::vector<std::size_t>(flowgen::kNumApps, scale.syn_per_class),
      raw_opts);

  // The §4 extension: hard projection onto the TCP state machine.
  diffusion::GenerateOptions stateful_opts = bench::generate_options(scale);
  stateful_opts.stateful_tcp_repair = true;
  const flowgen::Dataset ours_stateful = pipeline.generate_dataset(
      std::vector<std::size_t>(flowgen::kNumApps, scale.syn_per_class),
      stateful_opts);

  report.stage("replay_chains");
  std::vector<ReplayRow> rows = {
      run_chain("real traffic", real.flows),
      run_chain("synthetic (ours, full stack)", ours.flows),
      run_chain("synthetic (ours, unconstrained)", ours_raw.flows),
      run_chain("synthetic (ours + stateful TCP repair)",
                ours_stateful.flows),
  };

  std::vector<std::vector<std::string>> table;
  for (const auto& row : rows) {
    table.push_back({row.name, std::to_string(row.packets),
                     eval::fmt(row.tcp_acceptance, 3),
                     eval::fmt(row.delivery, 3),
                     std::to_string(row.handshakes)});
  }
  std::printf("\n%s\n",
              eval::format_table({"trace", "packets", "tcp conntrack accept",
                                  "end-to-end delivery", "handshakes"},
                                 table)
                  .c_str());
  std::printf("note: the GAN baseline emits NetFlow records, not packets — "
              "there is no trace to replay, which is the paper's point.\n");

  report.note("real_tcp_acceptance", rows[0].tcp_acceptance);
  report.note("ours_tcp_acceptance", rows[1].tcp_acceptance);
  report.note("stateful_tcp_acceptance", rows[3].tcp_acceptance);
  const bool shape_real = rows[0].tcp_acceptance > 0.999;
  const bool shape_better =
      rows[1].tcp_acceptance >= rows[2].tcp_acceptance;
  const bool shape_stateful = rows[3].tcp_acceptance > 0.95;
  std::printf("shape checks:\n");
  std::printf("  real traffic fully accepted ............. %s (%.3f)\n",
              shape_real ? "yes" : "NO", rows[0].tcp_acceptance);
  std::printf("  constraints do not hurt acceptance ...... %s (%.3f vs %.3f)\n",
              shape_better ? "yes" : "NO", rows[1].tcp_acceptance,
              rows[2].tcp_acceptance);
  std::printf("  stateful repair achieves firewall-valid . %s (%.3f)\n",
              shape_stateful ? "yes" : "NO", rows[3].tcp_acceptance);
  return shape_real && shape_stateful ? 0 : 1;
}
