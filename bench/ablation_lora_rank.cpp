// Ablation (DESIGN.md A2) — LoRA as the paper's class-coverage add-on
// (§3.1: the fine-tuned add-on "allows the flexible addition of new
// classes via word embeddings").
//
// Protocol: pre-train the base model on 9 of the 11 applications, then
// register the remaining two (teams, other) through adapter-only
// fine-tuning at ranks {0, 2, 4, 8} (rank 0 = embeddings only). Measured:
// can a Random Forest trained on REAL data recognize the synthetic flows
// of the two new classes? (generation quality for the added coverage).
#include "bench_common.hpp"

#include "eval/report.hpp"
#include "ml/features.hpp"
#include "ml/random_forest.hpp"

using namespace repro;

namespace {

// Held-out classes: one UDP conferencing app and one TCP social app.
// (Deliberately NOT the IoT "other" class: it acts as the classifier's
// junk sink, so zero-shot garbage would score as "recognized" there and
// mask the fine-tuning effect.)
constexpr int kHeldOutA = 4;  // teams
constexpr int kHeldOutB = 9;  // instagram

}  // namespace

int main() {
  bench::Scale scale;
  // Four full pre-train/fine-tune cycles run in this bench; halve the
  // training scale so the sweep stays tractable on one core.
  scale.train_per_class = std::max<std::size_t>(scale.train_per_class / 2, 4);
  scale.diff_epochs = std::max<std::size_t>(scale.diff_epochs / 2, 3);
  scale.ae_epochs = std::max<std::size_t>(scale.ae_epochs / 2, 5);
  bench::BenchReport report("ablation_lora_rank",
                            "LoRA rank sweep for class-coverage extension");

  report.stage("build_dataset");
  Rng rng(1);
  const flowgen::Dataset all =
      flowgen::build_uniform_dataset(scale.train_per_class, rng);
  flowgen::Dataset base_ds, new_ds;
  for (const auto& flow : all.flows) {
    if (flow.label == kHeldOutA || flow.label == kHeldOutB) {
      new_ds.flows.push_back(flow);
    } else {
      base_ds.flows.push_back(flow);
    }
  }

  // Reference RF trained on real data over all 11 classes.
  report.stage("fit_reference_rf");
  const eval::ScenarioConfig sc = bench::scenario_config(scale);
  ml::ForestConfig forest_cfg = sc.forest;
  ml::RandomForest reference(forest_cfg);
  reference.fit(ml::nprint_features(all.flows, sc.nprint_packets));

  report.stage("rank_sweep");
  std::vector<std::vector<std::string>> rows;
  for (std::size_t rank : {std::size_t{0}, std::size_t{2}, std::size_t{4},
                           std::size_t{8}}) {
    diffusion::PipelineConfig cfg = bench::pipeline_config(scale);
    // The rank-0 row is the zero-shot baseline: no fine-tuning at all
    // (adapters exist but never train — epochs = 0 below), so the new
    // classes rely on whatever the untrained embedding rows produce.
    cfg.unet.lora_rank = rank == 0 ? 2 : rank;
    diffusion::TraceDiffusion pipeline(cfg, bench::class_names());
    std::printf("rank %zu: pre-training base on %zu flows (9 classes)...\n",
                rank, base_ds.size());
    pipeline.fit(base_ds);
    const std::size_t ft_epochs =
        rank == 0 ? 0 : std::max<std::size_t>(scale.diff_epochs, 6);
    if (ft_epochs > 0) {
      std::printf("rank %zu: adapter fine-tuning on %zu new-class flows...\n",
                  rank, new_ds.size());
      pipeline.fit_lora(new_ds, ft_epochs);
    }

    // Pure prompt-conditional generation: template init / ControlNet /
    // projection are deliberately disabled so the measurement isolates
    // what the adapters and embedding rows learned, not the one-shot
    // template mechanism.
    diffusion::GenerateOptions opts = bench::generate_options(scale);
    opts.count = scale.syn_per_class;
    opts.use_control = false;
    opts.template_strength = 1.0f;
    opts.constraint = diffusion::ConstraintMode::kOff;
    std::size_t recognized = 0, total = 0, non_empty = 0;
    double true_prob = 0.0;
    std::string per_class;
    for (int cls : {kHeldOutA, kHeldOutB}) {
      const auto flows = pipeline.generate(cls, opts);
      const auto features =
          ml::nprint_features(flows, sc.nprint_packets);
      std::size_t cls_hits = 0;
      for (std::size_t i = 0; i < features.rows.size(); ++i) {
        ++total;
        if (!flows[i].packets.empty()) ++non_empty;
        if (reference.predict(features.rows[i]) == cls) {
          ++recognized;
          ++cls_hits;
        }
        const auto proba = reference.predict_proba(features.rows[i]);
        true_prob += proba[static_cast<std::size_t>(cls)];
      }
      if (!per_class.empty()) per_class += " / ";
      per_class += flowgen::app_name(static_cast<flowgen::App>(cls)) + " " +
                   eval::fmt(static_cast<double>(cls_hits) /
                                 static_cast<double>(features.rows.size()),
                             2);
    }
    const double totald = static_cast<double>(total);
    const double recognition =
        total ? static_cast<double>(recognized) / totald : 0.0;
    report.note("rank" + std::to_string(rank) + "_recognition", recognition);
    rows.push_back(
        {rank == 0 ? "0 (zero-shot, no fine-tune)" : std::to_string(rank),
         eval::fmt(recognition, 3),
         eval::fmt(total ? true_prob / totald : 0.0, 3), per_class,
         std::to_string(non_empty) + "/" + std::to_string(total)});
  }

  std::printf("\n%s\n",
              eval::format_table({"LoRA rank", "new-class recognition",
                                  "mean true-class prob", "per class",
                                  "decodable flows"},
                                 rows)
                  .c_str());
  std::printf("reading: adapter fine-tuning (plus trainable word-embedding "
              "rows) registers the two unseen classes on a frozen base; "
              "rank 0 is the zero-shot floor with no fine-tuning.\n");
  return 0;
}
