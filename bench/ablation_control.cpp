// Ablation (DESIGN.md A1) — what produces the §3.2 controllability
// result? Four configurations of the generation stack:
//
//   none        no ControlNet hints, no hard projection
//   control     ControlNet hints only
//   projection  hard constraint projection only
//   both        the full pipeline (paper configuration)
//
// Measured: protocol-template compliance of generated flows and the
// Synthetic/Real transfer accuracy (does the constraint machinery make
// the synthetic data more useful downstream?).
#include "bench_common.hpp"

#include "eval/report.hpp"
#include "ml/split.hpp"

using namespace repro;

int main() {
  bench::Scale scale;
  bench::BenchReport report("ablation_control",
                            "controllability ablation (ControlNet vs "
                            "projection)");

  report.stage("build_dataset");
  Rng rng(1);
  const flowgen::Dataset real =
      flowgen::build_table1_dataset(scale.flows_per_class, rng);
  std::vector<std::size_t> train_idx, test_idx;
  Rng split_rng(2);
  ml::stratified_split_indices(real.micro_labels(), 0.2, split_rng,
                               train_idx, test_idx);
  std::vector<net::Flow> train_flows, test_flows;
  for (std::size_t i : train_idx) train_flows.push_back(real.flows[i]);
  for (std::size_t i : test_idx) test_flows.push_back(real.flows[i]);
  flowgen::Dataset train_ds;
  train_ds.flows = train_flows;
  Rng cap_rng(3);
  const auto capped = train_ds.sample_per_class(scale.train_per_class, cap_rng);

  // One pipeline with the control branch trained; the ablation toggles
  // how much of it is used at generation time.
  report.stage("fit_diffusion");
  diffusion::TraceDiffusion pipeline(bench::pipeline_config(scale),
                                     bench::class_names());
  std::printf("fitting pipeline (with control branch) on %zu flows...\n",
              capped.size());
  pipeline.fit(capped);

  struct Variant {
    const char* name;
    bool use_control;
    diffusion::ConstraintMode constraint;
  };
  const Variant variants[] = {
      {"none", false, diffusion::ConstraintMode::kOff},
      {"control only", true, diffusion::ConstraintMode::kOff},
      {"projection only", false, diffusion::ConstraintMode::kProjected},
      {"both (paper)", true, diffusion::ConstraintMode::kProjected},
  };

  report.stage("run_variants");
  const eval::ScenarioConfig sc = bench::scenario_config(scale);
  std::vector<std::vector<std::string>> rows;
  double compliance_none = 0.0, compliance_both = 0.0;
  for (const Variant& variant : variants) {
    diffusion::GenerateOptions opts = bench::generate_options(scale);
    opts.use_control = variant.use_control;
    opts.constraint = variant.constraint;
    const flowgen::Dataset syn = pipeline.generate_dataset(
        std::vector<std::size_t>(flowgen::kNumApps, scale.syn_per_class),
        opts);

    // Template compliance across all generated flows.
    std::size_t compliant = 0, total = 0;
    for (const auto& flow : syn.flows) {
      const auto& tmpl = pipeline.class_template(flow.label);
      for (std::size_t i = 0; i < flow.packets.size(); ++i) {
        ++total;
        if (i < tmpl.per_packet.size() &&
            flow.packets[i].ip.protocol == tmpl.per_packet[i]) {
          ++compliant;
        }
      }
    }
    const double compliance =
        total ? static_cast<double>(compliant) / static_cast<double>(total)
              : 0.0;

    const auto transfer = eval::run_cross_scenario(
        "Synthetic/Real", syn.flows, test_flows,
        eval::Granularity::kNprintPcap, sc);
    rows.push_back({variant.name, eval::fmt(compliance, 3),
                    eval::fmt(transfer.macro_accuracy),
                    eval::fmt(transfer.micro_accuracy)});
    if (std::string(variant.name) == "none") compliance_none = compliance;
    if (std::string(variant.name) == "both (paper)") {
      compliance_both = compliance;
    }
  }

  std::printf("\n%s\n",
              eval::format_table({"variant", "proto compliance",
                                  "Syn/Real macro", "Syn/Real micro"},
                                 rows)
                  .c_str());
  std::printf("shape check: full stack strictly more compliant than "
              "unconstrained ... %s (%.3f vs %.3f)\n",
              compliance_both > compliance_none ? "yes" : "NO",
              compliance_both, compliance_none);
  report.note("compliance_none", compliance_none);
  report.note("compliance_both", compliance_both);
  return compliance_both >= compliance_none ? 0 : 1;
}
