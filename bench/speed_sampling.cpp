// §4 open challenge "Generative speed" — "diffusion models necessitate a
// multi-step sampling procedure during inference, extending the
// processing time ... the demand is for the rapid generation of tens of
// thousands of flows per second".
//
// google-benchmark harness measuring flows/second for:
//   * DDPM full ancestral sampling (T network evaluations),
//   * DDIM at 50 / 20 / 10 / 5 steps,
//   * classifier-free guidance on/off (2x evaluations per step),
//   * the GAN baseline (single forward pass — the speed bar to meet),
//   * the fast inference path (int8 GEMM route x distilled few-step
//     sampler) in all four combinations — flows_per_s_{fp32,int8}_
//     {ddim20,distilled} are the headline keys the fidelity gate and
//     README speedup table read,
// plus the decode path (latent -> nprint -> packets) on its own and a
// per-step U-Net latency histogram (fp32 vs int8).
#include <benchmark/benchmark.h>

#include <chrono>
#include <map>

#include "bench_common.hpp"
#include "common/telemetry/metrics.hpp"
#include "diffusion/distill.hpp"

using namespace repro;

namespace {

/// Measured flows/second per benchmark, keyed by a sanitized name
/// (ddim_20, gan_baseline, ...); written into the BenchReport results
/// after the google-benchmark run so BENCH_speed_sampling.json carries
/// the headline rates.
std::map<std::string, double>& flow_rates() {
  static std::map<std::string, double> rates;
  return rates;
}

/// Per-step U-Net latency snapshots (fp32 / int8), published into the
/// report as step_ms_<route>_{mean,p50,p90,p99,max} after the run.
std::map<std::string, telemetry::HistogramSnapshot>& step_histograms() {
  static std::map<std::string, telemetry::HistogramSnapshot> hists;
  return hists;
}

/// One shared trained pipeline for all benchmarks (training time is not
/// what this bench measures). Function-local static OBJECT (not a
/// leaked raw `new`): the destructor runs at exit, keeping the bench
/// clean under LeakSanitizer.
diffusion::TraceDiffusion& shared_pipeline() {
  struct Holder {
    diffusion::TraceDiffusion pipeline;
    Holder() : pipeline(make_config(), {"netflix", "teams"}) {
      Rng rng(1);
      flowgen::Dataset ds;
      for (int i = 0; i < 6; ++i) {
        net::Flow a = flowgen::generate_flow(flowgen::App::kNetflix, rng);
        a.label = 0;
        ds.flows.push_back(std::move(a));
        net::Flow b = flowgen::generate_flow(flowgen::App::kTeams, rng);
        b.label = 1;
        ds.flows.push_back(std::move(b));
      }
      pipeline.fit(ds);
      // Fast-path setup: distill few-step stages (40 -> 20 -> 10 -> 5,
      // the recommended recipe — a finer teacher costs nothing at
      // sample time) on the pure-noise trajectory the speed benches
      // measure.
      diffusion::DistillConfig dcfg;
      dcfg.teacher_steps = 40;
      dcfg.rounds = 3;
      dcfg.calibration_count = 4;
      dcfg.options.template_strength = 1.0f;
      pipeline.distill(dcfg);
      // Quantize the weight caches eagerly so the first int8 benchmark
      // iteration doesn't pay calibration inside the timed region.
      pipeline.prepare_quantized();
    }
    static diffusion::PipelineConfig make_config() {
      bench::Scale scale;
      scale.packets = env_size("REPRO_PACKETS", 32);
      diffusion::PipelineConfig cfg = bench::pipeline_config(scale);
      // Speed is architecture-dependent, not fit-quality-dependent:
      // train briefly on a small two-class set.
      cfg.ae_epochs = 4;
      cfg.diffusion_epochs = 2;
      cfg.control_epochs = 1;
      return cfg;
    }
  };
  static Holder holder;
  return holder.pipeline;
}

void run_generation(benchmark::State& state, const std::string& rate_key,
                    diffusion::SamplerKind sampler, std::size_t steps,
                    float guidance,
                    nn::Precision precision = nn::Precision::kFp32) {
  auto& pipeline = shared_pipeline();
  diffusion::GenerateOptions opts;
  opts.count = 1;
  opts.sampler = sampler;
  opts.ddim_steps = steps;
  opts.guidance_scale = guidance;
  opts.precision = precision;
  // Measure the pure samplers over the full schedule (one-shot template
  // guidance shortens the trajectory and would confound the comparison).
  opts.template_strength = 1.0f;
  std::size_t flows = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (auto _ : state) {
    auto out = pipeline.generate(0, opts);
    benchmark::DoNotOptimize(out);
    ++flows;
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (flows > 0 && secs > 0.0) {
    flow_rates()[rate_key] = static_cast<double>(flows) / secs;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(flows));
  state.counters["flows_per_s"] =
      benchmark::Counter(static_cast<double>(flows),
                         benchmark::Counter::kIsRate);
}

void BM_DdpmFull(benchmark::State& state) {
  run_generation(state, "ddpm_full", diffusion::SamplerKind::kDdpm, 0, 2.0f);
}
BENCHMARK(BM_DdpmFull)->Unit(benchmark::kMillisecond);

void BM_Ddim(benchmark::State& state) {
  run_generation(state, "ddim_" + std::to_string(state.range(0)),
                 diffusion::SamplerKind::kDdim,
                 static_cast<std::size_t>(state.range(0)), 2.0f);
}
BENCHMARK(BM_Ddim)->Arg(50)->Arg(20)->Arg(10)->Arg(5)->Unit(
    benchmark::kMillisecond);

void BM_DdimNoGuidance(benchmark::State& state) {
  run_generation(state, "ddim_noguid_" + std::to_string(state.range(0)),
                 diffusion::SamplerKind::kDdim,
                 static_cast<std::size_t>(state.range(0)), 1.0f);
}
BENCHMARK(BM_DdimNoGuidance)->Arg(20)->Arg(10)->Unit(benchmark::kMillisecond);

// --- Fast inference path (ISSUE 9): int8 GEMM route x distilled
// few-step sampler, benchmarked in all four combinations with guidance
// on (the guided DDIM-20 fp32 rate is the PR-4 baseline the acceptance
// criterion compares against).
void BM_FastPath(benchmark::State& state) {
  const bool int8 = state.range(0) != 0;
  const bool distilled = state.range(1) != 0;
  const std::string key = std::string(int8 ? "int8" : "fp32") + "_" +
                          (distilled ? "distilled" : "ddim20");
  run_generation(
      state, key,
      distilled ? diffusion::SamplerKind::kDistilled
                : diffusion::SamplerKind::kDdim,
      distilled ? 5 : 20, 2.0f,
      int8 ? nn::Precision::kInt8 : nn::Precision::kFp32);
}
BENCHMARK(BM_FastPath)
    ->ArgsProduct({{0, 1}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

/// Per-step U-Net latency on the bare eps evaluation: every forward in
/// a DDIM-20 trajectory is timed individually into a log-bucket
/// histogram, fp32 vs int8, so the report shows the step-latency
/// distribution (not just throughput means).
void run_step_latency(benchmark::State& state, const std::string& key,
                      nn::Precision precision) {
  auto& pipeline = shared_pipeline();
  auto& unet = pipeline.unet();
  const auto& cfg = pipeline.config();
  const diffusion::NoiseSchedule schedule(cfg.timesteps, cfg.schedule);
  const std::vector<int> class_ids(1, 0);
  telemetry::Histogram hist(
      telemetry::Histogram::exponential_bounds(1e-2, 1e4, 28));  // ms
  unet.set_precision(precision);
  diffusion::EpsFn eps_fn = [&](const nn::Tensor& x, std::size_t t) {
    const std::vector<float> timesteps(x.dim(0), static_cast<float>(t));
    const auto start = std::chrono::steady_clock::now();
    nn::Tensor eps = unet.forward(x, timesteps, class_ids);
    hist.observe(std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - start)
                     .count());
    return eps;
  };
  Rng rng(17);
  const std::vector<std::size_t> shape{1, cfg.autoencoder.latent_dim,
                                       cfg.packets};
  for (auto _ : state) {
    auto out = diffusion::ddim_sample(eps_fn, schedule, shape, 20, 0.0f, rng);
    benchmark::DoNotOptimize(out);
  }
  unet.set_precision(nn::Precision::kFp32);
  const telemetry::HistogramSnapshot snap = hist.snapshot();
  step_histograms()[key] = snap;
  state.counters["step_ms_p50"] = snap.quantile(0.5);
  state.counters["step_ms_p99"] = snap.quantile(0.99);
}

void BM_StepLatency(benchmark::State& state) {
  const bool int8 = state.range(0) != 0;
  run_step_latency(state, int8 ? "int8" : "fp32",
                   int8 ? nn::Precision::kInt8 : nn::Precision::kFp32);
}
BENCHMARK(BM_StepLatency)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_GanBaselineSampling(benchmark::State& state) {
  // Function-local static object (not a leaked raw `new`).
  struct Holder {
    gan::NetFlowGan model;
    Holder() : model(make_config()) {
      Rng rng(2);
      const auto ds = flowgen::build_uniform_dataset(5, rng);
      model.fit(gan::to_netflow(ds.flows));
    }
    static gan::GanConfig make_config() {
      bench::Scale scale;
      gan::GanConfig cfg = bench::gan_config(scale);
      cfg.epochs = 10;
      return cfg;
    }
  };
  static Holder holder;
  std::size_t flows = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (auto _ : state) {
    auto out = holder.model.sample(64);
    benchmark::DoNotOptimize(out);
    flows += 64;
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (flows > 0 && secs > 0.0) {
    flow_rates()["gan_baseline"] = static_cast<double>(flows) / secs;
  }
  state.counters["flows_per_s"] =
      benchmark::Counter(static_cast<double>(flows),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GanBaselineSampling)->Unit(benchmark::kMillisecond);

void BM_DecodeOnly(benchmark::State& state) {
  // The non-model tail of the pipeline: latent -> bits -> packets.
  auto& pipeline = shared_pipeline();
  const std::size_t c = pipeline.config().autoencoder.latent_dim;
  const std::size_t l = pipeline.config().packets;
  Rng rng(3);
  nn::Tensor latent({1, c, l});
  for (std::size_t i = 0; i < latent.size(); ++i) {
    latent[i] = static_cast<float>(rng.gaussian());
  }
  for (auto _ : state) {
    nprint::Matrix matrix = pipeline.autoencoder().decode_matrix(latent);
    nprint::quantize(matrix);
    auto flow = nprint::decode_flow(matrix);
    benchmark::DoNotOptimize(flow);
  }
}
BENCHMARK(BM_DecodeOnly)->Unit(benchmark::kMicrosecond);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): after the google-benchmark
// run, emit the machine-readable telemetry report (BENCH_*.json) like
// every other bench so the perf trajectory includes sampling speed.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  bench::BenchReport report("speed_sampling",
                            "§4 generative-speed challenge (flows/second)");
  report.stage("benchmarks");
  benchmark::RunSpecifiedBenchmarks();
  // Headline rates into the results block: flows_per_s_<bench> keys,
  // one per benchmark that ran (filters leave the rest out).
  for (const auto& [key, rate] : flow_rates()) {
    report.note("flows_per_s_" + key, rate);
  }
  for (const auto& [key, snap] : step_histograms()) {
    report.note("step_ms_" + key + "_mean", snap.mean());
    report.note("step_ms_" + key + "_p50", snap.quantile(0.5));
    report.note("step_ms_" + key + "_p90", snap.quantile(0.9));
    report.note("step_ms_" + key + "_p99", snap.quantile(0.99));
    report.note("step_ms_" + key + "_max", snap.max);
    report.note("step_ms_" + key + "_count",
                static_cast<double>(snap.count));
  }
  benchmark::Shutdown();
  return 0;
}
