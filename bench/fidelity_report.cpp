// §2.3's similarity-vs-utility observation, quantified: GAN-based
// generators can score well on *aggregate* distribution similarity —
// "even though the aggregate distribution similarity (or low
// distribution drift) may be high, it does not necessarily translate
// into useful data for classification tasks ... the per-class results
// show a significant 'distribution shift'".
//
// This bench reports, for the GAN baseline and the diffusion pipeline:
//   * per-feature marginal similarity (KS / W1 / JSD) of NetFlow
//     features against real data,
//   * the class-conditional KS (the per-class distribution shift),
//   * the Synthetic/Real micro accuracy from the same synthetic sets,
// so the aggregate-vs-conditional gap is visible in one table.
#include "bench_common.hpp"

#include "eval/fidelity.hpp"
#include "eval/report.hpp"
#include "ml/split.hpp"

using namespace repro;

int main() {
  bench::Scale scale;
  bench::BenchReport report("fidelity_report",
                            "§2.3 similarity-vs-utility analysis (aggregate "
                            "vs per-class distribution shift)");

  report.stage("build_dataset");
  Rng rng(1);
  const flowgen::Dataset real =
      flowgen::build_table1_dataset(scale.flows_per_class, rng);
  std::vector<std::size_t> train_idx, test_idx;
  Rng split_rng(2);
  ml::stratified_split_indices(real.micro_labels(), 0.2, split_rng,
                               train_idx, test_idx);
  std::vector<net::Flow> train_flows, test_flows;
  for (std::size_t i : train_idx) train_flows.push_back(real.flows[i]);
  for (std::size_t i : test_idx) test_flows.push_back(real.flows[i]);
  const auto real_records = gan::to_netflow(train_flows);

  // --- GAN synthetic records. ---
  report.stage("fit_gan");
  gan::NetFlowGan gan_model(bench::gan_config(scale));
  std::printf("training GAN...\n");
  gan_model.fit(real_records);
  const auto gan_records = gan_model.sample(real_records.size());

  // --- Diffusion synthetic flows -> NetFlow records. ---
  report.stage("fit_diffusion");
  diffusion::TraceDiffusion pipeline(bench::pipeline_config(scale),
                                     bench::class_names());
  Rng cap_rng(3);
  flowgen::Dataset train_ds;
  train_ds.flows = train_flows;
  std::printf("fitting diffusion pipeline...\n");
  pipeline.fit(train_ds.sample_per_class(scale.train_per_class, cap_rng));
  const flowgen::Dataset ours = pipeline.generate_dataset(
      std::vector<std::size_t>(flowgen::kNumApps, scale.syn_per_class),
      bench::generate_options(scale));
  const auto ours_records = gan::to_netflow(ours.flows);

  // --- Per-feature marginal table. ---
  report.stage("fidelity_analysis");
  const auto gan_fid = eval::netflow_fidelity(real_records, gan_records);
  const auto ours_fid = eval::netflow_fidelity(real_records, ours_records);
  std::vector<std::vector<std::string>> rows;
  for (std::size_t f = 0; f < gan_fid.size(); ++f) {
    rows.push_back({gan_fid[f].feature, eval::fmt(gan_fid[f].ks, 3),
                    eval::fmt(ours_fid[f].ks, 3),
                    eval::fmt(gan_fid[f].jsd, 3),
                    eval::fmt(ours_fid[f].jsd, 3)});
  }
  std::printf("\nper-feature marginal similarity vs real (lower = closer)\n%s\n",
              eval::format_table({"feature", "KS gan", "KS ours", "JSD gan",
                                  "JSD ours"},
                                 rows)
                  .c_str());

  // --- Aggregate vs class-conditional summary + downstream utility. ---
  const double gan_agg = eval::mean_ks(gan_fid);
  const double ours_agg = eval::mean_ks(ours_fid);
  const double gan_cond = eval::class_conditional_ks(
      real_records, gan_records, flowgen::kNumApps);
  const double ours_cond = eval::class_conditional_ks(
      real_records, ours_records, flowgen::kNumApps);

  const eval::ScenarioConfig sc = bench::scenario_config(scale);
  const auto gan_transfer = eval::run_cross_scenario_netflow(
      "Syn/Real", gan_records, gan::to_netflow(test_flows), sc);
  const auto ours_transfer = eval::run_cross_scenario(
      "Syn/Real", ours.flows, test_flows, eval::Granularity::kNprintPcap, sc);

  std::vector<std::vector<std::string>> summary = {
      {"GAN (NetFlow)", eval::fmt(gan_agg, 3), eval::fmt(gan_cond, 3),
       eval::fmt(gan_transfer.micro_accuracy)},
      {"Ours (pcap)", eval::fmt(ours_agg, 3), eval::fmt(ours_cond, 3),
       eval::fmt(ours_transfer.micro_accuracy)},
  };
  std::printf("%s\n",
              eval::format_table({"generator", "aggregate KS",
                                  "class-conditional KS",
                                  "Syn/Real micro acc"},
                                 summary)
                  .c_str());

  report.note("gan_aggregate_ks", gan_agg);
  report.note("gan_conditional_ks", gan_cond);
  report.note("ours_aggregate_ks", ours_agg);
  report.note("ours_conditional_ks", ours_cond);
  report.note("ours_syn_real_micro", ours_transfer.micro_accuracy);
  const bool shape_gap = gan_cond > gan_agg + 0.05;
  const bool shape_utility =
      ours_transfer.micro_accuracy > gan_transfer.micro_accuracy;
  std::printf("shape checks:\n");
  std::printf("  GAN per-class shift exceeds aggregate ... %s (%.3f vs %.3f)\n",
              shape_gap ? "yes" : "NO", gan_cond, gan_agg);
  std::printf("  ours more useful downstream ............. %s (%.2f vs %.2f)\n",
              shape_utility ? "yes" : "NO", ours_transfer.micro_accuracy,
              gan_transfer.micro_accuracy);
  return shape_utility ? 0 : 1;
}
