// Times the static-analysis gate itself: repro_lint rule mode and
// format mode over the full tree (src/ bench/ tools/ tests/ examples/).
// The point is to keep the lint step cheap enough that nobody is
// tempted to skip it — the report fails loudly if either pass slows
// past a generous budget or reports findings on a clean tree.
//
// Writes BENCH_lint.json via bench::BenchReport like every other bench.
// The rule pass also exports the engine's per-pass wall times
// (--timings-json) so a regression in one analysis pass (tokens,
// determinism, architecture) is visible in the report, not hidden in
// the total.

#include <array>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace {

struct PassResult {
  int exit_code = -1;
  std::size_t files_scanned = 0;
  std::size_t findings = 0;
  bool parsed = false;
};

/// Runs one repro_lint pass and parses its summary line
/// ("repro_lint: N files scanned, M findings").
PassResult run_pass(const std::string& extra_args) {
  const std::string cmd = std::string("\"") + REPRO_LINT_BIN +
                          "\" --root \"" + REPRO_LINT_ROOT + "\" " +
                          extra_args + " src bench tools tests examples 2>&1";
  PassResult result;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 512> buf{};
  std::string last_line;
  while (std::fgets(buf.data(), static_cast<int>(buf.size()), pipe) != nullptr) {
    last_line = buf.data();
  }
  const int status = pclose(pipe);
  if (status >= 0 && WIFEXITED(status)) {
    result.exit_code = WEXITSTATUS(status);
  }
  unsigned long files = 0, findings = 0;
  if (std::sscanf(last_line.c_str(), "repro_lint: %lu files scanned, %lu",
                  &files, &findings) == 2) {
    result.files_scanned = files;
    result.findings = findings;
    result.parsed = true;
  }
  return result;
}

struct PassTiming {
  std::string pass;
  double seconds = 0.0;
  unsigned long findings = 0;
};

/// Parses the flat {"pass": ..., "seconds": ..., "findings": ...} rows
/// repro_lint --timings-json writes.
std::vector<PassTiming> read_timings(const std::string& path) {
  std::vector<PassTiming> out;
  FILE* in = std::fopen(path.c_str(), "r");
  if (in == nullptr) return out;
  std::array<char, 512> buf{};
  while (std::fgets(buf.data(), static_cast<int>(buf.size()), in) != nullptr) {
    std::array<char, 64> name{};
    PassTiming t;
    if (std::sscanf(buf.data(),
                    " {\"pass\": \"%63[^\"]\", \"seconds\": %lf,"
                    " \"findings\": %lu}",
                    name.data(), &t.seconds, &t.findings) == 3) {
      t.pass = name.data();
      out.push_back(t);
    }
  }
  std::fclose(in);
  return out;
}

}  // namespace

int main() {
  repro::bench::BenchReport report(
      "lint", "build hygiene gate (not a paper artifact)");

  report.stage("rules");
  const std::string timings_path = "lint_pass_timings.json";
  const PassResult rules = run_pass("--timings-json " + timings_path);

  report.stage("format");
  const PassResult format = run_pass("--format-check");

  report.stage("report");
  report.note("rules_exit_code", rules.exit_code);
  report.note("rules_files_scanned", static_cast<double>(rules.files_scanned));
  report.note("rules_findings", static_cast<double>(rules.findings));
  report.note("format_exit_code", format.exit_code);
  report.note("format_findings", static_cast<double>(format.findings));
  const std::vector<PassTiming> timings = read_timings(timings_path);
  for (const PassTiming& t : timings) {
    report.note("pass_" + t.pass + "_seconds", t.seconds);
    report.note("pass_" + t.pass + "_findings", static_cast<double>(t.findings));
    std::printf("pass %-12s %8.3fs  %lu findings\n", t.pass.c_str(),
                t.seconds, t.findings);
  }

  std::printf("rules:  exit %d, %zu files, %zu findings\n", rules.exit_code,
              rules.files_scanned, rules.findings);
  std::printf("format: exit %d, %zu findings\n", format.exit_code,
              format.findings);

  if (!rules.parsed || !format.parsed || rules.exit_code != 0 ||
      format.exit_code != 0) {
    std::printf("FAIL: lint tree is not clean\n");
    return 1;
  }
  if (timings.size() != 3) {
    std::printf("FAIL: expected 3 engine pass timings, got %zu\n",
                timings.size());
    return 1;
  }
  return 0;
}
