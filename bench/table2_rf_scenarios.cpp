// Table 2 — "RF model performance across different training/testing
// scenarios": the paper's six rows, both feature granularities, macro-
// and micro-level accuracy.
//
//   Real/Real            nprint pcap   (paper 1.00 / 0.94)
//   Real/Real            NetFlow       (paper 0.96 / 0.85)
//   Real/Synthetic Ours  nprint pcap   (paper 0.71 / 0.40)
//   Real/Synthetic GAN   NetFlow       (paper 0.12 / 0.056)
//   Synthetic/Real Ours  nprint pcap   (paper 0.72 / 0.31)
//   Synthetic/Real GAN   NetFlow       (paper 0.42 / 0.20)
//
// Protocol: one imbalanced "real" dataset at Table 1 proportions; an
// 80-20 stratified split; the diffusion pipeline fine-tuned on a capped
// per-class subset (the paper caps at 100 flows/class for LoRA cost);
// a NetShare-like GAN trained on the NetFlow records of the same real
// training flows; balanced synthetic datasets from both generators.
#include "bench_common.hpp"

#include <chrono>

#include "eval/report.hpp"
#include "ml/split.hpp"

using namespace repro;

namespace {

struct PaperRow {
  const char* scenario;
  const char* granularity;
  double macro;
  double micro;
};

constexpr PaperRow kPaperRows[] = {
    {"Real/Real", "nprint-formatted pcap", 1.00, 0.94},
    {"Real/Real", "NetFlow", 0.96, 0.85},
    {"Real/Synthetic (Ours)", "nprint-formatted pcap", 0.71, 0.40},
    {"Real/Synthetic (GAN)", "NetFlow", 0.12, 0.056},
    {"Synthetic/Real (Ours)", "nprint-formatted pcap", 0.72, 0.31},
    {"Synthetic/Real (GAN)", "NetFlow", 0.42, 0.20},
};

}  // namespace

int main() {
  bench::Scale scale;
  bench::BenchReport report("table2_rf_scenarios",
                            "Table 2 (RF accuracy across scenarios) + the "
                            "§2.3 granularity comparison");

  const auto t_start = std::chrono::steady_clock::now();
  report.stage("build_dataset");
  Rng rng(1);
  const flowgen::Dataset real =
      flowgen::build_table1_dataset(scale.flows_per_class, rng);
  std::printf("real dataset: %zu flows\n", real.size());

  // Shared 80-20 stratified split over flows, reused by every real-side
  // evaluation so granularities are compared on identical flows.
  std::vector<std::size_t> train_idx, test_idx;
  Rng split_rng(2);
  ml::stratified_split_indices(real.micro_labels(), 0.2, split_rng,
                               train_idx, test_idx);
  std::vector<net::Flow> real_train, real_test;
  for (std::size_t i : train_idx) real_train.push_back(real.flows[i]);
  for (std::size_t i : test_idx) real_test.push_back(real.flows[i]);

  const eval::ScenarioConfig sc = bench::scenario_config(scale);

  // --- Diffusion pipeline ("Ours"). ---
  report.stage("fit_diffusion");
  diffusion::TraceDiffusion pipeline(bench::pipeline_config(scale),
                                     bench::class_names());
  {
    flowgen::Dataset train_ds;
    train_ds.flows = real_train;
    Rng cap_rng(3);
    const flowgen::Dataset capped =
        train_ds.sample_per_class(scale.train_per_class, cap_rng);
    std::printf("fitting diffusion pipeline on %zu flows (cap %zu/class)...\n",
                capped.size(), scale.train_per_class);
    const auto stats = pipeline.fit(capped);
    std::printf("  ae loss %.4f | diffusion loss %.4f | control loss %.4f\n",
                stats.ae_final_loss, stats.diffusion_final_loss,
                stats.control_final_loss);
  }
  report.stage("generate_synthetic");
  std::printf("generating %zu synthetic flows/class (DDIM %zu steps)...\n",
              scale.syn_per_class, scale.ddim_steps);
  const flowgen::Dataset ours_syn = pipeline.generate_dataset(
      std::vector<std::size_t>(flowgen::kNumApps, scale.syn_per_class),
      bench::generate_options(scale));

  // --- GAN baseline on NetFlow records. ---
  report.stage("fit_gan");
  gan::NetFlowGan netflow_gan(bench::gan_config(scale));
  const auto real_train_records = gan::to_netflow(real_train);
  const auto real_test_records = gan::to_netflow(real_test);
  std::printf("training NetShare-like GAN on %zu NetFlow records...\n",
              real_train_records.size());
  netflow_gan.fit(real_train_records);
  const auto gan_syn = netflow_gan.sample(ours_syn.size());

  // --- The six Table 2 rows. ---
  report.stage("evaluate_scenarios");
  std::vector<eval::ScenarioResult> results;
  results.push_back(
      eval::run_real_real(real, eval::Granularity::kNprintPcap, sc));
  results.push_back(
      eval::run_real_real(real, eval::Granularity::kNetFlow, sc));
  results.push_back(eval::run_cross_scenario(
      "Real/Synthetic (Ours)", real_train, ours_syn.flows,
      eval::Granularity::kNprintPcap, sc));
  results.push_back(eval::run_cross_scenario_netflow(
      "Real/Synthetic (GAN)", real_train_records, gan_syn, sc));
  results.push_back(eval::run_cross_scenario(
      "Synthetic/Real (Ours)", ours_syn.flows, real_test,
      eval::Granularity::kNprintPcap, sc));
  results.push_back(eval::run_cross_scenario_netflow(
      "Synthetic/Real (GAN)", gan_syn, real_test_records, sc));

  std::vector<std::vector<std::string>> rows;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    rows.push_back({kPaperRows[i].scenario, kPaperRows[i].granularity,
                    eval::fmt(kPaperRows[i].macro) + " / " +
                        eval::fmt(r.macro_accuracy),
                    eval::fmt(kPaperRows[i].micro) + " / " +
                        eval::fmt(r.micro_accuracy)});
  }
  std::printf("\n%s\n",
              eval::format_table({"Training/Testing", "Data Granularity",
                                  "Macro (paper/ours)",
                                  "Micro (paper/ours)"},
                                 rows)
                  .c_str());

  // --- §2.3 inline numbers: raw bits vs NetFlow on real data. ---
  std::printf("§2.3 granularity gap (Real/Real micro): raw packet bits "
              "%.2f vs NetFlow %.2f (paper: 0.94 vs 0.85)\n",
              results[0].micro_accuracy, results[1].micro_accuracy);

  // --- Shape checks the paper's argument rests on. ---
  const bool shape_granularity =
      results[0].micro_accuracy > results[1].micro_accuracy;
  const bool shape_real_syn =
      results[2].micro_accuracy > results[3].micro_accuracy;
  const bool shape_syn_real =
      results[4].micro_accuracy > results[5].micro_accuracy;
  std::printf("\nshape checks:\n");
  std::printf("  raw bits beat NetFlow on real data ........ %s\n",
              shape_granularity ? "yes" : "NO");
  std::printf("  ours beats GAN on Real/Synthetic .......... %s\n",
              shape_real_syn ? "yes" : "NO");
  std::printf("  ours beats GAN on Synthetic/Real .......... %s\n",
              shape_syn_real ? "yes" : "NO");

  const auto elapsed = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t_start)
                           .count();
  std::printf("\ntotal wall time: %.1fs\n", elapsed);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const std::string tag = "row" + std::to_string(i);
    report.note(tag + "_macro", results[i].macro_accuracy);
    report.note(tag + "_micro", results[i].micro_accuracy);
  }
  report.note("shape_checks_passed",
              shape_granularity && shape_real_syn && shape_syn_real ? 1.0
                                                                    : 0.0);
  return shape_granularity && shape_real_syn && shape_syn_real ? 0 : 1;
}
