// Figure 2 — "Color processed synthetic data for Amazon: all packets
// (rows of pixels) are of the protocol type TCP."
//
// Trains the pipeline, generates one synthetic Amazon flow image, writes
// it as a PPM (red = 1, green = 0, grey = -1, columns in the paper's
// TCP|UDP|ICMP|IPv4 order), prints an ASCII region-occupancy rendering,
// and measures protocol compliance of many generated flows per class —
// the §3.2 Controllability result ("all generated packets ... adhere to
// the TCP protocol type", "Teams using UDP").
#include <filesystem>

#include "bench_common.hpp"

#include "diffusion/constraint.hpp"
#include "eval/report.hpp"
#include "nprint/image.hpp"

using namespace repro;

namespace {

char region_char(const nprint::Matrix& matrix, std::size_t row,
                 nprint::Region region) {
  const std::size_t offset = nprint::region_offset(region);
  const std::size_t size = nprint::region_size(region);
  std::size_t occupied = 0;
  for (std::size_t i = 0; i < size; ++i) {
    if (matrix.at(row, offset + i) > -0.5f) ++occupied;
  }
  const double frac = static_cast<double>(occupied) / static_cast<double>(size);
  if (frac > 0.30) return '#';
  if (frac > 0.0) return '+';
  return '.';
}

}  // namespace

int main() {
  bench::Scale scale;
  bench::BenchReport report("fig2_protocol_image",
                            "Figure 2 (synthetic Amazon flow image, protocol "
                            "compliance)");

  report.stage("fit_diffusion");
  Rng rng(1);
  const flowgen::Dataset real =
      flowgen::build_table1_dataset(scale.flows_per_class, rng);
  diffusion::TraceDiffusion pipeline(bench::pipeline_config(scale),
                                     bench::class_names());
  Rng cap_rng(2);
  std::printf("fitting diffusion pipeline...\n");
  pipeline.fit(real.sample_per_class(scale.train_per_class, cap_rng));

  // --- The Figure 2 artifact: one Amazon flow image. ---
  report.stage("generate_image");
  const int amazon = static_cast<int>(flowgen::App::kAmazon);
  diffusion::ProtocolTemplate used;
  const nprint::Matrix matrix = pipeline.generate_matrix(
      amazon, bench::generate_options(scale), &used);
  // Artifacts never land in the working directory: honor
  // REPRO_BENCH_DIR like every report, else collect under reports/.
  std::string ppm_path = telemetry::report_path("fig2_amazon_synthetic.ppm");
  if (ppm_path == "fig2_amazon_synthetic.ppm") {
    std::filesystem::create_directories("reports");
    ppm_path = "reports/fig2_amazon_synthetic.ppm";
  }
  nprint::write_ppm(ppm_path, nprint::render(matrix));
  std::printf("wrote %s (%zux%zu, red=1 green=0 grey=-1)\n", ppm_path.c_str(),
              matrix.cols(), matrix.rows());

  std::printf("\nregion occupancy per packet row "
              "('#' dense, '+' sparse, '.' vacant):\n");
  std::printf("row   TCP(480) UDP(64) ICMP(64) IPv4(480)\n");
  for (std::size_t r = 0; r < matrix.rows(); ++r) {
    if (matrix.row_vacant(r)) continue;
    std::printf("%3zu      %c        %c       %c        %c\n", r,
                region_char(matrix, r, nprint::Region::kTcp),
                region_char(matrix, r, nprint::Region::kUdp),
                region_char(matrix, r, nprint::Region::kIcmp),
                region_char(matrix, r, nprint::Region::kIpv4));
  }
  std::printf("amazon template compliance of this image: %.3f\n",
              diffusion::template_compliance(matrix, used));

  // --- Compliance sweep across all classes (Teams=UDP etc.). ---
  report.stage("compliance_sweep");
  std::printf("\nper-class protocol compliance over %zu generated flows:\n",
              scale.syn_per_class);
  std::vector<std::vector<std::string>> rows;
  double worst = 1.0;
  for (std::size_t cls = 0; cls < flowgen::kNumApps; ++cls) {
    diffusion::GenerateOptions opts = bench::generate_options(scale);
    opts.count = scale.syn_per_class;
    const auto flows = pipeline.generate(static_cast<int>(cls), opts);
    const auto& tmpl = pipeline.class_template(static_cast<int>(cls));
    std::size_t compliant_rows = 0, total_rows = 0;
    for (const auto& flow : flows) {
      for (std::size_t i = 0; i < flow.packets.size(); ++i) {
        ++total_rows;
        if (i < tmpl.per_packet.size() &&
            flow.packets[i].ip.protocol == tmpl.per_packet[i]) {
          ++compliant_rows;
        }
      }
    }
    const double compliance =
        total_rows ? static_cast<double>(compliant_rows) /
                         static_cast<double>(total_rows)
                   : 0.0;
    worst = std::min(worst, compliance);
    rows.push_back({flowgen::app_name(static_cast<flowgen::App>(cls)),
                    net::proto_name(tmpl.per_packet.empty()
                                        ? net::IpProto::kTcp
                                        : tmpl.per_packet[0]),
                    eval::fmt(compliance, 3)});
  }
  std::printf("%s\n", eval::format_table({"class", "template proto[0]",
                                          "compliance"},
                                         rows)
                          .c_str());
  report.note("worst_class_compliance", worst);
  std::printf("shape check: full compliance across classes ... %s\n",
              worst >= 0.999 ? "yes" : "NO");
  return worst >= 0.999 ? 0 : 1;
}
