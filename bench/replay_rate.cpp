// Open-loop replay rate/jitter bench (src/replay/emit): proves the
// emitter sustains a target packet rate on the virtual clock, reports
// scheduling jitter percentiles and source underruns, and drives the
// emitted stream through the strict-conntrack chain and the serving
// layer. Writes BENCH_replay_rate.json.
//
// Stages:
//   prepare        generate the flowgen session pool (not measured)
//   virtual_rate   NullSink on the virtual pacer: sustained pps vs
//                  target, jitter p50/p95/p99, conservation gate
//   chain_at_rate  same emission through conntrack -> source-NAT; the
//                  strict firewall must accept every TCP packet at rate
//   served_rate    flows prefetched from serve::TraceService (toy
//                  model) through the bounded ring, cooperative pump —
//                  backpressure lands as typed rejects/underruns, never
//                  as wire-time stalls
//   realtime_smoke small run on the real clock: pacer lateness
//                  percentiles (the only wall-time stage)
//
// Exit is nonzero if any stage breaks event conservation
// (flows_scheduled != flows_emitted + underruns, or packets_emitted !=
// packets_scheduled), if the virtual-rate stage misses the target by
// more than 30%, or if the firewall drops emitted traffic.
//
// Why time_scale matters: recorded intra-flow gaps dominate a session's
// wall span (a 10-packet streaming flow covers ~12 s), so sustained pps
// is edge-limited unless flow timelines are compressed below the
// arrival spacing. time_scale = 1e-4 puts a flow's whole lifetime well
// under one inter-arrival gap at the default rate.
//
// Knobs: REPRO_REPLAY_FLOWS (256) sessions in the pool,
// REPRO_REPLAY_PPS (20000) target rate, REPRO_REPLAY_SERVED_FLOWS (16)
// flows pulled through the service, REPRO_DDIM_STEPS / REPRO_PACKETS /
// REPRO_*_EPOCHS for the toy model as everywhere else.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "flowgen/tcp_session.hpp"
#include "replay/conntrack.hpp"
#include "replay/emit/emitter.hpp"
#include "replay/functions.hpp"
#include "serve/registry.hpp"
#include "serve/service.hpp"

using namespace repro;
using replay::emit::EmitConfig;
using replay::emit::EmitReport;

namespace {

constexpr std::size_t kPacketsPerSession = 10;

/// Distinct-endpoint TCP sessions so the conntrack stage tracks one
/// connection per flow (addresses cycle through a /24-sized pool).
std::vector<net::Flow> session_pool(std::size_t flows) {
  std::vector<net::Flow> out;
  out.reserve(flows);
  Rng rng(17);
  const auto& profile = flowgen::app_profile(flowgen::App::kNetflix);
  for (std::size_t i = 0; i < flows; ++i) {
    flowgen::Endpoints ep;
    ep.client_addr = 0x0A000001u + static_cast<std::uint32_t>(i % 250);
    ep.server_addr = 0x0D000001u + static_cast<std::uint32_t>((i / 250) % 250);
    ep.client_port = static_cast<std::uint16_t>(40000 + i % 20000);
    ep.server_port = 443;
    out.push_back(
        flowgen::generate_tcp_flow(profile, ep, kPacketsPerSession, rng));
  }
  return out;
}

EmitConfig emit_config(std::uint64_t total_flows, double target_pps) {
  EmitConfig config;
  config.target_pps = target_pps;
  config.total_flows = total_flows;
  config.arrival = replay::emit::Arrival::kExponential;
  config.time_scale = 1e-4;  // see header comment
  config.seed = 17;
  return config;
}

void note_rate(bench::BenchReport& report, const char* prefix,
               const EmitReport& r) {
  const std::string p(prefix);
  report.note(p + "achieved_pps", r.achieved_pps);
  report.note(p + "flows_emitted", static_cast<double>(r.flows_emitted));
  report.note(p + "packets", static_cast<double>(r.packets_emitted));
  report.note(p + "underruns", static_cast<double>(r.underruns));
  report.note(p + "jitter_p50_us", r.jitter_p50 * 1e6);
  report.note(p + "jitter_p95_us", r.jitter_p95 * 1e6);
  report.note(p + "jitter_p99_us", r.jitter_p99 * 1e6);
}

std::shared_ptr<diffusion::TraceDiffusion> train_toy_pipeline() {
  bench::Scale scale;
  diffusion::PipelineConfig cfg = bench::pipeline_config(scale);
  // Rate plumbing, not fidelity, is under test: train briefly.
  cfg.ae_epochs = env_size("REPRO_AE_EPOCHS", 4);
  cfg.diffusion_epochs = env_size("REPRO_DIFF_EPOCHS", 2);
  cfg.control_epochs = 1;
  cfg.seed = 11;
  auto pipeline = std::make_shared<diffusion::TraceDiffusion>(
      cfg, std::vector<std::string>{"netflix", "teams"});
  Rng rng(1);
  flowgen::Dataset ds;
  for (int i = 0; i < 6; ++i) {
    net::Flow a =
        flowgen::generate_flow(flowgen::App::kNetflix, scale.packets, rng);
    a.label = 0;
    ds.flows.push_back(std::move(a));
    net::Flow b =
        flowgen::generate_flow(flowgen::App::kTeams, scale.packets, rng);
    b.label = 1;
    ds.flows.push_back(std::move(b));
  }
  pipeline->fit(ds);
  return pipeline;
}

}  // namespace

int main() {
  bench::BenchReport report(
      "replay_rate",
      "open-loop replay: sustained pps, jitter, and backpressure");
  const std::size_t flows = env_size("REPRO_REPLAY_FLOWS", 256);
  const double target_pps = env_double("REPRO_REPLAY_PPS", 20000.0);
  bool ok = true;

  report.stage("prepare");
  const std::vector<net::Flow> pool = session_pool(flows);

  report.stage("virtual_rate");
  EmitReport virt;
  {
    replay::emit::VectorFlowSource source(pool);
    replay::emit::VirtualPacer pacer;
    replay::emit::NullSink sink;
    replay::emit::OpenLoopEmitter emitter(emit_config(flows, target_pps),
                                          source, pacer, sink);
    virt = emitter.run();
  }
  const double rate_error =
      target_pps > 0.0 ? (virt.achieved_pps - target_pps) / target_pps : 0.0;
  std::printf("virtual rate: %.0f pps achieved vs %.0f target (%+.1f%%), "
              "jitter p50=%.1fus p95=%.1fus p99=%.1fus, %llu underruns\n",
              virt.achieved_pps, target_pps, rate_error * 100.0,
              virt.jitter_p50 * 1e6, virt.jitter_p95 * 1e6,
              virt.jitter_p99 * 1e6,
              static_cast<unsigned long long>(virt.underruns));
  note_rate(report, "virtual_", virt);
  report.note("target_pps", target_pps);
  report.note("rate_error_pct", rate_error * 100.0);
  if (!virt.conserved()) {
    std::fprintf(stderr, "replay_rate: FAILED (virtual_rate broke event "
                         "conservation)\n");
    ok = false;
  }
  if (rate_error < -0.3 || rate_error > 0.3) {
    std::fprintf(stderr,
                 "replay_rate: FAILED (achieved %.0f pps misses the %.0f "
                 "target by more than 30%%)\n",
                 virt.achieved_pps, target_pps);
    ok = false;
  }

  report.stage("chain_at_rate");
  {
    replay::emit::VectorFlowSource source(pool);
    replay::emit::VirtualPacer pacer;
    replay::emit::ChainSink sink;
    // Firewall before NAT (LAN-side ordering): conntrack must see the
    // recorded consistent 5-tuples; the NAT masquerades on egress.
    auto conntrack = std::make_unique<replay::ConntrackFunction>();
    const auto* tracker = conntrack.get();
    sink.engine().add_function(std::move(conntrack));
    sink.engine().add_function(
        std::make_unique<replay::SourceNat>(0xC0A80001u));
    replay::emit::OpenLoopEmitter emitter(emit_config(flows, target_pps),
                                          source, pacer, sink);
    const EmitReport chain = emitter.run();
    const double acceptance = tracker->stats().tcp_acceptance();
    std::printf("chain at rate: %.0f pps through conntrack -> NAT, "
                "acceptance %.4f, %zu connections\n",
                chain.achieved_pps, acceptance,
                tracker->stats().connections_tracked);
    note_rate(report, "chain_", chain);
    report.note("chain_tcp_acceptance", acceptance);
    report.note("chain_connections",
                static_cast<double>(tracker->stats().connections_tracked));
    if (!chain.conserved() ||
        sink.report().input_packets != chain.packets_emitted) {
      std::fprintf(stderr, "replay_rate: FAILED (chain_at_rate broke event "
                           "conservation)\n");
      ok = false;
    }
    if (acceptance < 1.0) {
      std::fprintf(stderr, "replay_rate: FAILED (strict conntrack dropped "
                           "emitted traffic: acceptance %.4f)\n",
                  acceptance);
      ok = false;
    }
  }

  report.stage("served_rate");
  {
    serve::ModelRegistry registry;
    registry.install("default", train_toy_pipeline(), "bench-v1");
    serve::ServiceConfig cfg;
    cfg.batch.max_wait = 0.0;  // dispatch on first pump
    cfg.cache_capacity = 0;    // force the full generation path
    serve::TraceService service(registry, cfg);

    const std::size_t served_flows = env_size("REPRO_REPLAY_SERVED_FLOWS", 16);
    replay::emit::ServedSourceConfig src;
    src.class_id = 0;
    src.seed_base = 42;
    src.total_flows = served_flows;
    src.ring_capacity = 8;
    src.flows_per_request = 4;
    src.ddim_steps = env_size("REPRO_DDIM_STEPS", 4);
    replay::emit::ServedFlowSource source(service, src);
    source.prefetch();  // warm the ring before the first arrival
    replay::emit::VirtualPacer pacer;
    replay::emit::NullSink sink;
    replay::emit::OpenLoopEmitter emitter(
        emit_config(served_flows, target_pps), source, pacer, sink);
    const EmitReport served = emitter.run();
    std::printf("served rate: %llu/%zu flows through the service ring, "
                "%llu underruns, %llu queue-full rejects\n",
                static_cast<unsigned long long>(served.flows_emitted),
                served_flows,
                static_cast<unsigned long long>(served.underruns),
                static_cast<unsigned long long>(
                    source.stats().queue_full_rejects));
    note_rate(report, "served_", served);
    report.note("served_queue_full_rejects",
                static_cast<double>(source.stats().queue_full_rejects));
    report.note("served_flows_requested", static_cast<double>(served_flows));
    if (!served.conserved() || served.flows_emitted != served_flows) {
      std::fprintf(stderr, "replay_rate: FAILED (served_rate dropped flows "
                           "or broke conservation)\n");
      ok = false;
    }
  }

  report.stage("realtime_smoke");
  {
    // Small on purpose: this is the only stage paying wall time. 2 kpps
    // for ~200 packets keeps it near 100 ms while still exercising the
    // sleep/spin pacer path.
    const std::size_t rt_flows = 20;
    std::vector<net::Flow> rt_pool(pool.begin(),
                                   pool.begin() + static_cast<std::ptrdiff_t>(
                                                      rt_flows));
    replay::emit::VectorFlowSource source(rt_pool);
    const std::unique_ptr<replay::emit::Pacer> pacer =
        replay::emit::make_realtime_pacer();
    replay::emit::NullSink sink;
    replay::emit::OpenLoopEmitter emitter(emit_config(rt_flows, 2000.0),
                                          source, *pacer, sink);
    const EmitReport real = emitter.run();
    std::printf("realtime smoke: %.0f pps achieved vs 2000 target, "
                "lateness p50=%.2fms p95=%.2fms p99=%.2fms\n",
                real.achieved_pps, real.lateness_p50 * 1e3,
                real.lateness_p95 * 1e3, real.lateness_p99 * 1e3);
    report.note("realtime_achieved_pps", real.achieved_pps);
    report.note("realtime_lateness_p50_ms", real.lateness_p50 * 1e3);
    report.note("realtime_lateness_p95_ms", real.lateness_p95 * 1e3);
    report.note("realtime_lateness_p99_ms", real.lateness_p99 * 1e3);
    if (!real.conserved()) {
      std::fprintf(stderr, "replay_rate: FAILED (realtime_smoke broke event "
                           "conservation)\n");
      ok = false;
    }
  }

  return ok ? 0 : 1;
}
