// Figure 1 — "distribution comparison between the real and GAN-based,
// and our synthetic data": per-class proportions for (a) the 11-class
// generation problem and (b) the netflix/youtube 2-class problem, plus
// imbalance and JSD-to-uniform summary metrics.
//
// The GAN treats the class label "as just another feature", so its
// sampled label distribution drifts and amplifies the real data's
// imbalance; the diffusion pipeline simply invokes generation an equal
// number of times per class prompt and is balanced by construction
// (§3.2 Coverage) — but only to the extent every prompt yields decodable
// flows, which is what this bench verifies.
#include "bench_common.hpp"

#include "common/stats.hpp"
#include "eval/coverage.hpp"
#include "eval/report.hpp"
#include "flowgen/generator.hpp"

using namespace repro;

namespace {

eval::CoverageReport build_report(const std::vector<std::string>& names,
                                  std::vector<double> real,
                                  std::vector<double> gan,
                                  std::vector<double> ours) {
  eval::CoverageReport report;
  report.class_names = names;
  report.series = {{"Real", std::move(real)},
                   {"GAN", std::move(gan)},
                   {"Ours", std::move(ours)}};
  return report;
}

}  // namespace

int main() {
  bench::Scale scale;
  bench::BenchReport report("fig1_class_coverage",
                            "Figure 1 (class coverage / imbalance, 11-class "
                            "and 2-class)");

  report.stage("build_dataset");
  Rng rng(1);
  const flowgen::Dataset real =
      flowgen::build_table1_dataset(scale.flows_per_class, rng);
  const auto real_props =
      eval::label_proportions(real.micro_labels(), flowgen::kNumApps);

  // --- GAN series: label field distribution of generated samples. ---
  report.stage("fit_gan");
  gan::NetFlowGan gan_model(bench::gan_config(scale));
  std::printf("training GAN on %zu records...\n", real.size());
  gan_model.fit(gan::to_netflow(real.flows));
  const std::size_t sample_count = 1000;
  const auto gan_counts = gan_model.label_distribution(sample_count);
  std::vector<double> gan_props = normalize(gan_counts);

  // --- Ours: diffusion pipeline invoked equally per class. ---
  report.stage("fit_diffusion");
  diffusion::TraceDiffusion pipeline(bench::pipeline_config(scale),
                                     bench::class_names());
  Rng cap_rng(2);
  const auto capped = real.sample_per_class(scale.train_per_class, cap_rng);
  std::printf("fitting diffusion pipeline on %zu flows...\n", capped.size());
  pipeline.fit(capped);
  const flowgen::Dataset ours_syn = pipeline.generate_dataset(
      std::vector<std::size_t>(flowgen::kNumApps, scale.syn_per_class),
      bench::generate_options(scale));
  // Count only decodable flows — an empty generation would silently skew
  // the distribution, so it must show up here.
  std::vector<int> ours_labels;
  for (const auto& flow : ours_syn.flows) {
    if (!flow.packets.empty()) ours_labels.push_back(flow.label);
  }
  const auto ours_props =
      eval::label_proportions(ours_labels, flowgen::kNumApps);

  // --- (a) 11-class table. ---
  std::printf("\n(a) 11-class generation\n%s\n",
              eval::format_coverage_table(
                  build_report(bench::class_names(), real_props, gan_props,
                               ours_props))
                  .c_str());

  // --- (b) 2-class (netflix/youtube) variant. ---
  report.stage("two_class_variant");
  {
    Rng rng2(3);
    flowgen::Dataset real2;
    const auto scaled = flowgen::scaled_table1_counts(scale.flows_per_class);
    for (std::size_t i = 0; i < scaled[0]; ++i) {
      real2.flows.push_back(
          flowgen::generate_flow(flowgen::App::kNetflix, rng2));
    }
    for (std::size_t i = 0; i < scaled[1]; ++i) {
      real2.flows.push_back(
          flowgen::generate_flow(flowgen::App::kYoutube, rng2));
    }
    const auto real2_props =
        eval::label_proportions(real2.micro_labels(), 2);

    gan::GanConfig gcfg = bench::gan_config(scale);
    gcfg.num_classes = 2;
    gan::NetFlowGan gan2(gcfg);
    gan2.fit(gan::to_netflow(real2.flows));
    const auto gan2_props = normalize(gan2.label_distribution(sample_count));

    diffusion::PipelineConfig pcfg = bench::pipeline_config(scale);
    diffusion::TraceDiffusion pipeline2(pcfg, {"netflix", "youtube"});
    Rng cap2(4);
    pipeline2.fit(real2.sample_per_class(scale.train_per_class, cap2));
    const auto syn2 = pipeline2.generate_dataset(
        {scale.syn_per_class, scale.syn_per_class},
        bench::generate_options(scale));
    std::vector<int> syn2_labels;
    for (const auto& flow : syn2.flows) {
      if (!flow.packets.empty()) syn2_labels.push_back(flow.label);
    }
    const auto ours2_props = eval::label_proportions(syn2_labels, 2);

    std::printf("(b) 2-class generation\n%s\n",
                eval::format_coverage_table(
                    build_report({"netflix", "youtube"}, real2_props,
                                 gan2_props, ours2_props))
                    .c_str());
  }

  // --- Diversity guard: balanced counts mean nothing if every sample
  // is a clone of the class template. ---
  {
    const double real_div =
        eval::sample_diversity(real.flows, 10, 200, 77);
    const double ours_div =
        eval::sample_diversity(ours_syn.flows, 10, 200, 78);
    std::printf("sample diversity (mean pairwise bit distance): real %.4f, "
                "ours %.4f\n",
                real_div, ours_div);
  }

  // --- Shape checks. ---
  const double gan_imb = eval::coverage_imbalance(gan_props);
  const double ours_imb = eval::coverage_imbalance(ours_props);
  const double real_imb = eval::coverage_imbalance(real_props);
  report.note("gan_imbalance", gan_imb);
  report.note("ours_imbalance", ours_imb);
  report.note("real_imbalance", real_imb);
  std::printf("shape checks:\n");
  std::printf("  ours more balanced than real ............ %s (%.2f vs %.2f)\n",
              ours_imb < real_imb ? "yes" : "NO", ours_imb, real_imb);
  std::printf("  ours more balanced than GAN ............. %s (%.2f vs %.2f)\n",
              ours_imb < gan_imb ? "yes" : "NO", ours_imb, gan_imb);
  std::printf("  GAN amplifies real imbalance ............ %s (%.2f vs %.2f)\n",
              gan_imb > real_imb ? "yes" : "NO", gan_imb, real_imb);
  return ours_imb < gan_imb ? 0 : 1;
}
