// Fast-path fidelity gate (ISSUE 9): the int8 GEMM route and the
// distilled few-step sampler trade numerics for speed, so this bench
// proves they do not trade away fidelity. It reruns the Table-2 RF
// scenarios (Real/Synthetic and Synthetic/Real, nprint granularity) on
// synthetic data from each fast configuration and FAILS (exit 1) if any
// accuracy drops more than REPRO_FIDELITY_EPS (default 0.02) absolute
// below the fp32 / DDIM-20 baseline generated from the same fitted
// pipeline. check.sh runs this as the `fastpath` stage.
//
// Configurations compared (same pipeline, same seeds, same real split):
//   fp32_ddim20   — the reference route (baseline)
//   int8_ddim20   — quantized GEMMs, full-length sampler
//   fp32_distill5 — fp32 GEMMs, 5-step distilled sampler
//   int8_distill5 — both fast paths stacked
#include "bench_common.hpp"

#include <cstdio>
#include <string>
#include <vector>

#include "eval/report.hpp"
#include "ml/split.hpp"

using namespace repro;

namespace {

struct RouteConfig {
  const char* key;
  nn::Precision precision;
  diffusion::SamplerKind sampler;
  std::size_t steps;
};

struct RouteScores {
  std::string key;
  // Mean accuracies over the RF-seed repeats.
  double real_syn_macro = 0.0;  // train real, test synthetic
  double real_syn_micro = 0.0;
  double syn_real_macro = 0.0;  // train synthetic, test real
  double syn_real_micro = 0.0;
};

}  // namespace

int main() {
  bench::Scale scale;
  const double eps = env_double("REPRO_FIDELITY_EPS", 0.02);
  // Each scenario score is the mean over this many RF seeds: one forest's
  // bagging draw moves a macro accuracy by more than eps at bench scale,
  // and the gate must measure the routes, not one forest's luck.
  const std::size_t rf_repeats = static_cast<std::size_t>(
      env_double("REPRO_FIDELITY_RF_REPEATS", 3));
  const std::size_t distilled_steps = 5;
  bench::BenchReport report(
      "fidelity_fastpath",
      "fast-path fidelity gate (Table-2 scenarios, fast routes vs fp32/DDIM-20)");

  report.stage("build_dataset");
  Rng rng(1);
  const flowgen::Dataset real =
      flowgen::build_table1_dataset(scale.flows_per_class, rng);
  std::vector<std::size_t> train_idx, test_idx;
  Rng split_rng(2);
  ml::stratified_split_indices(real.micro_labels(), 0.2, split_rng,
                               train_idx, test_idx);
  std::vector<net::Flow> real_train, real_test;
  for (std::size_t i : train_idx) real_train.push_back(real.flows[i]);
  for (std::size_t i : test_idx) real_test.push_back(real.flows[i]);

  report.stage("fit_diffusion");
  diffusion::TraceDiffusion pipeline(bench::pipeline_config(scale),
                                     bench::class_names());
  {
    flowgen::Dataset train_ds;
    train_ds.flows = real_train;
    Rng cap_rng(3);
    const flowgen::Dataset capped =
        train_ds.sample_per_class(scale.train_per_class, cap_rng);
    std::printf("fitting diffusion pipeline on %zu flows...\n", capped.size());
    pipeline.fit(capped);
  }

  report.stage("distill");
  // The distill prototype options MUST match the generation options below
  // (same template_strength / control path) so the fitted stages are
  // keyed on the start timestep generation will actually use.
  diffusion::DistillConfig dcfg;
  dcfg.teacher_steps = 40;
  dcfg.rounds = 3;  // 40 -> 20 -> 10 -> 5
  dcfg.calibration_count = 8;
  dcfg.options = bench::generate_options(scale);
  const std::size_t stages = pipeline.distill(dcfg);
  pipeline.prepare_quantized();
  std::printf("distilled %zu stages; step counts:", stages);
  for (const std::size_t s : pipeline.distilled_step_counts()) {
    std::printf(" %zu", s);
  }
  std::printf("\n");

  const RouteConfig routes[] = {
      {"fp32_ddim20", nn::Precision::kFp32, diffusion::SamplerKind::kDdim, 20},
      {"int8_ddim20", nn::Precision::kInt8, diffusion::SamplerKind::kDdim, 20},
      {"fp32_distill5", nn::Precision::kFp32,
       diffusion::SamplerKind::kDistilled, distilled_steps},
      {"int8_distill5", nn::Precision::kInt8,
       diffusion::SamplerKind::kDistilled, distilled_steps},
  };

  const eval::ScenarioConfig sc = bench::scenario_config(scale);
  std::vector<RouteScores> scored;
  for (const RouteConfig& route : routes) {
    report.stage(route.key);
    std::printf("generating %zu flows/class via %s...\n", scale.syn_per_class,
                route.key);
    diffusion::GenerateOptions opts = bench::generate_options(scale);
    opts.sampler = route.sampler;
    opts.ddim_steps = route.steps;
    opts.precision = route.precision;
    const flowgen::Dataset syn = pipeline.generate_dataset(
        std::vector<std::size_t>(flowgen::kNumApps, scale.syn_per_class),
        opts);
    RouteScores scores;
    scores.key = route.key;
    for (std::size_t rep = 0; rep < rf_repeats; ++rep) {
      eval::ScenarioConfig rep_sc = sc;
      rep_sc.seed = sc.seed + rep;
      const eval::ScenarioResult real_syn = eval::run_cross_scenario(
          std::string("Real/Synthetic ") + route.key, real_train, syn.flows,
          eval::Granularity::kNprintPcap, rep_sc);
      const eval::ScenarioResult syn_real = eval::run_cross_scenario(
          std::string("Synthetic/Real ") + route.key, syn.flows, real_test,
          eval::Granularity::kNprintPcap, rep_sc);
      const double reps = static_cast<double>(rf_repeats);
      scores.real_syn_macro += real_syn.macro_accuracy / reps;
      scores.real_syn_micro += real_syn.micro_accuracy / reps;
      scores.syn_real_macro += syn_real.macro_accuracy / reps;
      scores.syn_real_micro += syn_real.micro_accuracy / reps;
    }
    scored.push_back(std::move(scores));
  }

  report.stage("gate");
  const RouteScores& baseline = scored.front();
  std::vector<std::vector<std::string>> rows;
  std::size_t violations = 0;
  for (const RouteScores& s : scored) {
    const struct {
      const char* name;
      double value;
      double base;
    } checks[] = {
        {"real_syn_macro", s.real_syn_macro, baseline.real_syn_macro},
        {"real_syn_micro", s.real_syn_micro, baseline.real_syn_micro},
        {"syn_real_macro", s.syn_real_macro, baseline.syn_real_macro},
        {"syn_real_micro", s.syn_real_micro, baseline.syn_real_micro},
    };
    for (const auto& check : checks) {
      const double drop = check.base - check.value;
      const bool bad = drop > eps;
      if (bad) ++violations;
      rows.push_back({s.key, check.name, eval::fmt(check.value, 3),
                      eval::fmt(check.base, 3), eval::fmt(drop, 3),
                      bad ? "FAIL" : "ok"});
      report.note(s.key + std::string("_") + check.name, check.value);
    }
  }
  std::printf("\nfast-path fidelity vs %s (eps %.3f)\n%s\n", baseline.key.c_str(),
              eps,
              eval::format_table(
                  {"route", "score", "value", "baseline", "drop", "gate"}, rows)
                  .c_str());
  report.note("gate_eps", eps);
  report.note("gate_rf_repeats", static_cast<double>(rf_repeats));
  report.note("gate_violations", static_cast<double>(violations));
  report.note("distilled_stages", static_cast<double>(stages));

  if (violations > 0) {
    std::printf("FIDELITY GATE FAILED: %zu score(s) dropped more than %.3f "
                "below the fp32/DDIM-20 baseline\n",
                violations, eps);
    report.finish();
    return 1;
  }
  std::printf("fidelity gate passed: every fast-path score within %.3f of "
              "the baseline\n",
              eps);
  return 0;
}
