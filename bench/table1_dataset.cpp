// Table 1 — "Service recognition dataset": per-macro-service and
// per-application flow counts. We print the paper's counts next to the
// scaled composition this run generates (relative proportions preserved),
// plus the per-class protocol mix observed in the generated flows as a
// sanity check of the traffic models.
#include "bench_common.hpp"

#include "eval/report.hpp"

using namespace repro;

int main() {
  bench::Scale scale;
  bench::BenchReport report("table1_dataset", "Table 1 (dataset composition)");

  report.stage("build_dataset");
  Rng rng(1);
  const flowgen::Dataset ds =
      flowgen::build_table1_dataset(scale.flows_per_class, rng);
  const auto counts = ds.per_class_counts();
  const auto& paper = flowgen::table1_flow_counts();

  std::vector<std::vector<std::string>> rows;
  std::size_t paper_total = 0, ours_total = 0;
  for (std::size_t cls = 0; cls < flowgen::kNumApps; ++cls) {
    const auto& profile = flowgen::app_profile(cls);
    // Observed protocol mix of this class's generated flows.
    std::size_t tcp = 0, udp = 0, icmp = 0, n = 0;
    for (const auto& flow : ds.flows) {
      if (flow.label != static_cast<int>(cls)) continue;
      ++n;
      switch (flow.dominant_protocol()) {
        case net::IpProto::kTcp:
          ++tcp;
          break;
        case net::IpProto::kUdp:
          ++udp;
          break;
        case net::IpProto::kIcmp:
          ++icmp;
          break;
      }
    }
    paper_total += paper[cls];
    ours_total += counts[cls];
    const double nd = static_cast<double>(n);
    const auto pct = [nd](std::size_t part) {
      return nd > 0 ? 100.0 * static_cast<double>(part) / nd : 0.0;
    };
    rows.push_back({flowgen::macro_service_name(profile.macro), profile.name,
                    std::to_string(paper[cls]), std::to_string(counts[cls]),
                    eval::fmt(pct(tcp), 0) + "/" + eval::fmt(pct(udp), 0) +
                        "/" + eval::fmt(pct(icmp), 0)});
  }
  rows.push_back({"TOTAL", "", std::to_string(paper_total),
                  std::to_string(ours_total), ""});

  std::printf("%s\n",
              eval::format_table({"macro service", "application",
                                  "paper #flows", "ours #flows",
                                  "tcp/udp/icmp %"},
                                 rows)
                  .c_str());

  std::printf("note: ours is the paper composition scaled so the largest\n"
              "class has %zu flows (REPRO_FLOWS_PER_CLASS).\n",
              scale.flows_per_class);
  report.note("total_flows", static_cast<double>(ours_total));
  return 0;
}
