// Shared setup for the reproduction benches: environment-scalable
// defaults, dataset builders, and the canonical pipeline configuration.
//
// Every bench accepts the same environment overrides so the suite can be
// scaled from a quick smoke run to a paper-scale run without recompiling:
//   REPRO_FLOWS_PER_CLASS  largest-class size of the "real" dataset (40)
//   REPRO_TRAIN_PER_CLASS  per-class cap for fine-tuning, paper: 100 (25)
//   REPRO_SYN_PER_CLASS    synthetic flows generated per class (15)
//   REPRO_PACKETS          flow-image height, paper: up to 1024 (32)
//   REPRO_AE_EPOCHS / REPRO_DIFF_EPOCHS / REPRO_CTRL_EPOCHS
//   REPRO_GAN_EPOCHS       GAN training epochs (200)
//   REPRO_DDIM_STEPS       sampling steps (15)
//   REPRO_RF_TREES         random-forest size (30)
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/env.hpp"
#include "diffusion/pipeline.hpp"
#include "eval/scenario.hpp"
#include "flowgen/dataset.hpp"
#include "flowgen/generator.hpp"
#include "gan/netflow_gan.hpp"

namespace repro::bench {

struct Scale {
  std::size_t flows_per_class = env_size("REPRO_FLOWS_PER_CLASS", 40);
  std::size_t train_per_class = env_size("REPRO_TRAIN_PER_CLASS", 25);
  std::size_t syn_per_class = env_size("REPRO_SYN_PER_CLASS", 15);
  std::size_t packets = env_size("REPRO_PACKETS", 16);
  std::size_t ae_epochs = env_size("REPRO_AE_EPOCHS", 25);
  std::size_t diff_epochs = env_size("REPRO_DIFF_EPOCHS", 15);
  std::size_t ctrl_epochs = env_size("REPRO_CTRL_EPOCHS", 8);
  std::size_t gan_epochs = env_size("REPRO_GAN_EPOCHS", 200);
  std::size_t ddim_steps = env_size("REPRO_DDIM_STEPS", 15);
  std::size_t rf_trees = env_size("REPRO_RF_TREES", 50);
};

inline std::vector<std::string> class_names() {
  std::vector<std::string> names;
  names.reserve(flowgen::kNumApps);
  for (std::size_t i = 0; i < flowgen::kNumApps; ++i) {
    names.push_back(flowgen::app_name(static_cast<flowgen::App>(i)));
  }
  return names;
}

inline diffusion::PipelineConfig pipeline_config(const Scale& scale) {
  diffusion::PipelineConfig cfg;
  cfg.packets = scale.packets;
  cfg.autoencoder.hidden_dim = 256;
  cfg.autoencoder.latent_dim = 40;
  cfg.ae_max_rows = 3500;
  cfg.unet.base_channels = 24;
  cfg.unet.temb_dim = 48;
  cfg.timesteps = 100;
  cfg.ae_epochs = scale.ae_epochs;
  cfg.diffusion_epochs = scale.diff_epochs;
  cfg.control_epochs = scale.ctrl_epochs;
  return cfg;
}

inline diffusion::GenerateOptions generate_options(const Scale& scale) {
  diffusion::GenerateOptions opts;
  opts.sampler = diffusion::SamplerKind::kDdim;
  opts.ddim_steps = scale.ddim_steps;
  opts.guidance_scale = 2.0f;
  return opts;
}

inline gan::GanConfig gan_config(const Scale& scale) {
  gan::GanConfig cfg;
  cfg.epochs = scale.gan_epochs;
  cfg.num_classes = flowgen::kNumApps;
  return cfg;
}

inline eval::ScenarioConfig scenario_config(const Scale& scale) {
  eval::ScenarioConfig cfg;
  cfg.forest.num_trees = scale.rf_trees;
  return cfg;
}

inline void print_header(const char* title, const char* paper_artifact) {
  std::printf("==================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_artifact);
  std::printf("==================================================\n");
}

}  // namespace repro::bench
