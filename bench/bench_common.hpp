// Shared setup for the reproduction benches: environment-scalable
// defaults, dataset builders, and the canonical pipeline configuration.
//
// Every bench accepts the same environment overrides so the suite can be
// scaled from a quick smoke run to a paper-scale run without recompiling:
//   REPRO_FLOWS_PER_CLASS  largest-class size of the "real" dataset (40)
//   REPRO_TRAIN_PER_CLASS  per-class cap for fine-tuning, paper: 100 (25)
//   REPRO_SYN_PER_CLASS    synthetic flows generated per class (15)
//   REPRO_PACKETS          flow-image height, paper: up to 1024 (32)
//   REPRO_AE_EPOCHS / REPRO_DIFF_EPOCHS / REPRO_CTRL_EPOCHS
//   REPRO_GAN_EPOCHS       GAN training epochs (200)
//   REPRO_DDIM_STEPS       sampling steps (15)
//   REPRO_RF_TREES         random-forest size (30)
#pragma once

#include <chrono>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/contracts.hpp"
#include "common/env.hpp"
#include "common/parallel/thread_pool.hpp"
#include "common/telemetry/export.hpp"
#include "common/telemetry/metrics.hpp"
#include "common/telemetry/trace.hpp"
#include "diffusion/pipeline.hpp"
#include "eval/scenario.hpp"
#include "flowgen/dataset.hpp"
#include "flowgen/generator.hpp"
#include "gan/netflow_gan.hpp"

namespace repro::bench {

struct Scale {
  std::size_t flows_per_class = env_size("REPRO_FLOWS_PER_CLASS", 40);
  std::size_t train_per_class = env_size("REPRO_TRAIN_PER_CLASS", 25);
  std::size_t syn_per_class = env_size("REPRO_SYN_PER_CLASS", 15);
  std::size_t packets = env_size("REPRO_PACKETS", 16);
  std::size_t ae_epochs = env_size("REPRO_AE_EPOCHS", 25);
  std::size_t diff_epochs = env_size("REPRO_DIFF_EPOCHS", 15);
  std::size_t ctrl_epochs = env_size("REPRO_CTRL_EPOCHS", 8);
  std::size_t gan_epochs = env_size("REPRO_GAN_EPOCHS", 200);
  std::size_t ddim_steps = env_size("REPRO_DDIM_STEPS", 15);
  std::size_t rf_trees = env_size("REPRO_RF_TREES", 50);
};

inline std::vector<std::string> class_names() {
  std::vector<std::string> names;
  names.reserve(flowgen::kNumApps);
  for (std::size_t i = 0; i < flowgen::kNumApps; ++i) {
    names.push_back(flowgen::app_name(static_cast<flowgen::App>(i)));
  }
  return names;
}

inline diffusion::PipelineConfig pipeline_config(const Scale& scale) {
  diffusion::PipelineConfig cfg;
  cfg.packets = scale.packets;
  cfg.autoencoder.hidden_dim = 256;
  cfg.autoencoder.latent_dim = 40;
  cfg.ae_max_rows = 3500;
  cfg.unet.base_channels = 24;
  cfg.unet.temb_dim = 48;
  cfg.timesteps = 100;
  cfg.ae_epochs = scale.ae_epochs;
  cfg.diffusion_epochs = scale.diff_epochs;
  cfg.control_epochs = scale.ctrl_epochs;
  return cfg;
}

inline diffusion::GenerateOptions generate_options(const Scale& scale) {
  diffusion::GenerateOptions opts;
  opts.sampler = diffusion::SamplerKind::kDdim;
  opts.ddim_steps = scale.ddim_steps;
  opts.guidance_scale = 2.0f;
  return opts;
}

inline gan::GanConfig gan_config(const Scale& scale) {
  gan::GanConfig cfg;
  cfg.epochs = scale.gan_epochs;
  cfg.num_classes = flowgen::kNumApps;
  return cfg;
}

inline eval::ScenarioConfig scenario_config(const Scale& scale) {
  eval::ScenarioConfig cfg;
  cfg.forest.num_trees = scale.rf_trees;
  return cfg;
}

inline void print_header(const char* title, const char* paper_artifact) {
  std::printf("==================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_artifact);
  std::printf("==================================================\n");
}

/// Serializes the Scale (the run's environment knobs) into `json` as an
/// object value.
inline void append_scale(telemetry::JsonWriter& json, const Scale& scale) {
  json.begin_object();
  const std::pair<const char*, std::size_t> fields[] = {
      {"flows_per_class", scale.flows_per_class},
      {"train_per_class", scale.train_per_class},
      {"syn_per_class", scale.syn_per_class},
      {"packets", scale.packets},
      {"ae_epochs", scale.ae_epochs},
      {"diff_epochs", scale.diff_epochs},
      {"ctrl_epochs", scale.ctrl_epochs},
      {"gan_epochs", scale.gan_epochs},
      {"ddim_steps", scale.ddim_steps},
      {"rf_trees", scale.rf_trees},
  };
  for (const auto& [name, value] : fields) {
    json.key(name);
    json.value(static_cast<std::uint64_t>(value));
  }
  json.end_object();
}

/// Machine-readable bench report: named stage wall times plus headline
/// result numbers, written as BENCH_<name>.json next to the stdout
/// report (and BENCH_<name>.trace.json with the Chrome trace when
/// telemetry is on). Construct at the top of main, call stage() at
/// phase boundaries and note() for key numbers; the destructor writes
/// the files.
class BenchReport {
 public:
  BenchReport(std::string name, const char* paper_artifact)
      : name_(std::move(name)), start_(Clock::now()), stage_start_(start_) {
    print_header(name_.c_str(), paper_artifact);
    // Per-run attribution: drop metrics/spans accumulated before main
    // (there are none today, but statics may warm caches later).
    telemetry::Registry::instance().reset();
    telemetry::reset_profile();
  }
  BenchReport(const BenchReport&) = delete;
  BenchReport& operator=(const BenchReport&) = delete;
  ~BenchReport() { finish(); }

  /// Ends the current stage (if any) and starts `stage_name`.
  void stage(const char* stage_name) {
    close_stage();
    current_stage_ = stage_name;
    stage_start_ = Clock::now();
  }

  /// Records a headline result number under "results" in the JSON.
  void note(const std::string& key, double value) {
    notes_.emplace_back(key, value);
  }

  /// Idempotent; writes BENCH_<name>.json (+ .trace.json if telemetry
  /// is enabled).
  void finish() {
    if (finished_) return;
    finished_ = true;
    close_stage();
    const double total = seconds_since(start_);

    telemetry::JsonWriter json;
    json.begin_object();
    json.key("bench");
    json.value(name_);
    json.key("telemetry_enabled");
    json.value(telemetry::enabled());
    json.key("threads");
    json.value(static_cast<std::uint64_t>(parallel::thread_count()));
    json.key("simd_width");
    json.value(static_cast<std::uint64_t>(REPRO_SIMD_WIDTH));
    json.key("checks");
    json.value(contracts_enabled());
    json.key("total_seconds");
    json.value(total);
    json.key("scale");
    append_scale(json, scale_);
    json.key("stages");
    json.begin_array();
    for (const auto& [stage_name, seconds] : stages_) {
      json.begin_object();
      json.key("name");
      json.value(stage_name);
      json.key("seconds");
      json.value(seconds);
      json.end_object();
    }
    json.end_array();
    json.key("results");
    json.begin_object();
    for (const auto& [key, value] : notes_) {
      json.key(key);
      json.value(value);
    }
    json.end_object();
    json.key("metrics");
    append_metrics(json, telemetry::Registry::instance().snapshot());
    json.key("spans");
    json.begin_array();
    for (const auto& child : telemetry::profile_snapshot().children) {
      append_span(json, child);
    }
    json.end_array();
    json.end_object();

    const std::string path = telemetry::report_path("BENCH_" + name_ + ".json");
    if (telemetry::write_text_file(path, std::move(json).str())) {
      std::printf("bench report: %s\n", path.c_str());
    } else {
      std::fprintf(stderr, "bench report: cannot write %s\n", path.c_str());
    }
    if (telemetry::enabled()) {
      const std::string trace_path =
          telemetry::report_path("BENCH_" + name_ + ".trace.json");
      if (telemetry::write_text_file(trace_path,
                                     telemetry::chrome_trace_json())) {
        std::printf("chrome trace: %s (load in chrome://tracing)\n",
                    trace_path.c_str());
      }
    }
  }

 private:
  using Clock = std::chrono::steady_clock;

  static double seconds_since(Clock::time_point t0) {
    return std::chrono::duration<double>(Clock::now() - t0).count();
  }

  void close_stage() {
    if (current_stage_.empty()) return;
    stages_.emplace_back(current_stage_, seconds_since(stage_start_));
    current_stage_.clear();
  }

  std::string name_;
  Scale scale_;
  Clock::time_point start_;
  Clock::time_point stage_start_;
  std::string current_stage_;
  std::vector<std::pair<std::string, double>> stages_;
  std::vector<std::pair<std::string, double>> notes_;
  bool finished_ = false;
};

}  // namespace repro::bench
