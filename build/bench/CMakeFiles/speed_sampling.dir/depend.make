# Empty dependencies file for speed_sampling.
# This may be replaced when dependencies are built.
