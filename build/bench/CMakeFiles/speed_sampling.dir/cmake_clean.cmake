file(REMOVE_RECURSE
  "CMakeFiles/speed_sampling.dir/speed_sampling.cpp.o"
  "CMakeFiles/speed_sampling.dir/speed_sampling.cpp.o.d"
  "speed_sampling"
  "speed_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speed_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
