file(REMOVE_RECURSE
  "CMakeFiles/ablation_control.dir/ablation_control.cpp.o"
  "CMakeFiles/ablation_control.dir/ablation_control.cpp.o.d"
  "ablation_control"
  "ablation_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
