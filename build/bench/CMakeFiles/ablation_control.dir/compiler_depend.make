# Empty compiler generated dependencies file for ablation_control.
# This may be replaced when dependencies are built.
