file(REMOVE_RECURSE
  "CMakeFiles/table1_dataset.dir/table1_dataset.cpp.o"
  "CMakeFiles/table1_dataset.dir/table1_dataset.cpp.o.d"
  "table1_dataset"
  "table1_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
