file(REMOVE_RECURSE
  "CMakeFiles/table2_rf_scenarios.dir/table2_rf_scenarios.cpp.o"
  "CMakeFiles/table2_rf_scenarios.dir/table2_rf_scenarios.cpp.o.d"
  "table2_rf_scenarios"
  "table2_rf_scenarios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_rf_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
