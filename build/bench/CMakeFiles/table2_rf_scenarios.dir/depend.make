# Empty dependencies file for table2_rf_scenarios.
# This may be replaced when dependencies are built.
