# Empty dependencies file for fidelity_report.
# This may be replaced when dependencies are built.
