
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fidelity_report.cpp" "bench/CMakeFiles/fidelity_report.dir/fidelity_report.cpp.o" "gcc" "bench/CMakeFiles/fidelity_report.dir/fidelity_report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/repro_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/diffusion/CMakeFiles/repro_diffusion.dir/DependInfo.cmake"
  "/root/repo/build/src/gan/CMakeFiles/repro_gan.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/repro_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/flowgen/CMakeFiles/repro_flowgen.dir/DependInfo.cmake"
  "/root/repo/build/src/replay/CMakeFiles/repro_replay.dir/DependInfo.cmake"
  "/root/repo/build/src/nprint/CMakeFiles/repro_nprint.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/repro_net.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/repro_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/repro_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
