file(REMOVE_RECURSE
  "CMakeFiles/fidelity_report.dir/fidelity_report.cpp.o"
  "CMakeFiles/fidelity_report.dir/fidelity_report.cpp.o.d"
  "fidelity_report"
  "fidelity_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fidelity_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
