# Empty compiler generated dependencies file for fig2_protocol_image.
# This may be replaced when dependencies are built.
