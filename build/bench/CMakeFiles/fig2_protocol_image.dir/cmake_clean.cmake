file(REMOVE_RECURSE
  "CMakeFiles/fig2_protocol_image.dir/fig2_protocol_image.cpp.o"
  "CMakeFiles/fig2_protocol_image.dir/fig2_protocol_image.cpp.o.d"
  "fig2_protocol_image"
  "fig2_protocol_image.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_protocol_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
