# Empty dependencies file for replay_validity.
# This may be replaced when dependencies are built.
