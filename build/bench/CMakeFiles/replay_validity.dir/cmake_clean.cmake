file(REMOVE_RECURSE
  "CMakeFiles/replay_validity.dir/replay_validity.cpp.o"
  "CMakeFiles/replay_validity.dir/replay_validity.cpp.o.d"
  "replay_validity"
  "replay_validity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replay_validity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
