# Empty dependencies file for ablation_gan_per_class.
# This may be replaced when dependencies are built.
