file(REMOVE_RECURSE
  "CMakeFiles/ablation_gan_per_class.dir/ablation_gan_per_class.cpp.o"
  "CMakeFiles/ablation_gan_per_class.dir/ablation_gan_per_class.cpp.o.d"
  "ablation_gan_per_class"
  "ablation_gan_per_class.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_gan_per_class.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
