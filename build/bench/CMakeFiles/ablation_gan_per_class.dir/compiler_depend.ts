# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for ablation_gan_per_class.
