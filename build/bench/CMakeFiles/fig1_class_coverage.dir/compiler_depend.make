# Empty compiler generated dependencies file for fig1_class_coverage.
# This may be replaced when dependencies are built.
