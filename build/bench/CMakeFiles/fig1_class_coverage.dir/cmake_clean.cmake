file(REMOVE_RECURSE
  "CMakeFiles/fig1_class_coverage.dir/fig1_class_coverage.cpp.o"
  "CMakeFiles/fig1_class_coverage.dir/fig1_class_coverage.cpp.o.d"
  "fig1_class_coverage"
  "fig1_class_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_class_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
