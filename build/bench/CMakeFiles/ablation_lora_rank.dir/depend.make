# Empty dependencies file for ablation_lora_rank.
# This may be replaced when dependencies are built.
