file(REMOVE_RECURSE
  "CMakeFiles/ablation_lora_rank.dir/ablation_lora_rank.cpp.o"
  "CMakeFiles/ablation_lora_rank.dir/ablation_lora_rank.cpp.o.d"
  "ablation_lora_rank"
  "ablation_lora_rank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lora_rank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
