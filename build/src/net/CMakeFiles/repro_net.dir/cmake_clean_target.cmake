file(REMOVE_RECURSE
  "librepro_net.a"
)
