file(REMOVE_RECURSE
  "CMakeFiles/repro_net.dir/checksum.cpp.o"
  "CMakeFiles/repro_net.dir/checksum.cpp.o.d"
  "CMakeFiles/repro_net.dir/flow.cpp.o"
  "CMakeFiles/repro_net.dir/flow.cpp.o.d"
  "CMakeFiles/repro_net.dir/headers.cpp.o"
  "CMakeFiles/repro_net.dir/headers.cpp.o.d"
  "CMakeFiles/repro_net.dir/packet.cpp.o"
  "CMakeFiles/repro_net.dir/packet.cpp.o.d"
  "CMakeFiles/repro_net.dir/pcap.cpp.o"
  "CMakeFiles/repro_net.dir/pcap.cpp.o.d"
  "librepro_net.a"
  "librepro_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
