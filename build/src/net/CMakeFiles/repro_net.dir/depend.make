# Empty dependencies file for repro_net.
# This may be replaced when dependencies are built.
