file(REMOVE_RECURSE
  "librepro_replay.a"
)
