# Empty dependencies file for repro_replay.
# This may be replaced when dependencies are built.
