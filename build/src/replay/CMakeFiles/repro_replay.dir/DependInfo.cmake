
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/replay/conntrack.cpp" "src/replay/CMakeFiles/repro_replay.dir/conntrack.cpp.o" "gcc" "src/replay/CMakeFiles/repro_replay.dir/conntrack.cpp.o.d"
  "/root/repo/src/replay/engine.cpp" "src/replay/CMakeFiles/repro_replay.dir/engine.cpp.o" "gcc" "src/replay/CMakeFiles/repro_replay.dir/engine.cpp.o.d"
  "/root/repo/src/replay/functions.cpp" "src/replay/CMakeFiles/repro_replay.dir/functions.cpp.o" "gcc" "src/replay/CMakeFiles/repro_replay.dir/functions.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/repro_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/repro_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
