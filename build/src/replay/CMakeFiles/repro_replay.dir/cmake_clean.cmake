file(REMOVE_RECURSE
  "CMakeFiles/repro_replay.dir/conntrack.cpp.o"
  "CMakeFiles/repro_replay.dir/conntrack.cpp.o.d"
  "CMakeFiles/repro_replay.dir/engine.cpp.o"
  "CMakeFiles/repro_replay.dir/engine.cpp.o.d"
  "CMakeFiles/repro_replay.dir/functions.cpp.o"
  "CMakeFiles/repro_replay.dir/functions.cpp.o.d"
  "librepro_replay.a"
  "librepro_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
