file(REMOVE_RECURSE
  "CMakeFiles/repro_gan.dir/netflow.cpp.o"
  "CMakeFiles/repro_gan.dir/netflow.cpp.o.d"
  "CMakeFiles/repro_gan.dir/netflow_gan.cpp.o"
  "CMakeFiles/repro_gan.dir/netflow_gan.cpp.o.d"
  "librepro_gan.a"
  "librepro_gan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_gan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
