# Empty compiler generated dependencies file for repro_gan.
# This may be replaced when dependencies are built.
