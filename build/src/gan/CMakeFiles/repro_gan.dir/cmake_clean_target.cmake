file(REMOVE_RECURSE
  "librepro_gan.a"
)
