
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gan/netflow.cpp" "src/gan/CMakeFiles/repro_gan.dir/netflow.cpp.o" "gcc" "src/gan/CMakeFiles/repro_gan.dir/netflow.cpp.o.d"
  "/root/repo/src/gan/netflow_gan.cpp" "src/gan/CMakeFiles/repro_gan.dir/netflow_gan.cpp.o" "gcc" "src/gan/CMakeFiles/repro_gan.dir/netflow_gan.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/repro_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/flowgen/CMakeFiles/repro_flowgen.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/repro_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/repro_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
