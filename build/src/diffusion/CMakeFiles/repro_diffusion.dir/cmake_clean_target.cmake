file(REMOVE_RECURSE
  "librepro_diffusion.a"
)
