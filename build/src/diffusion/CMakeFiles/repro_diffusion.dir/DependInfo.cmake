
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/diffusion/autoencoder.cpp" "src/diffusion/CMakeFiles/repro_diffusion.dir/autoencoder.cpp.o" "gcc" "src/diffusion/CMakeFiles/repro_diffusion.dir/autoencoder.cpp.o.d"
  "/root/repo/src/diffusion/conditioning.cpp" "src/diffusion/CMakeFiles/repro_diffusion.dir/conditioning.cpp.o" "gcc" "src/diffusion/CMakeFiles/repro_diffusion.dir/conditioning.cpp.o.d"
  "/root/repo/src/diffusion/constraint.cpp" "src/diffusion/CMakeFiles/repro_diffusion.dir/constraint.cpp.o" "gcc" "src/diffusion/CMakeFiles/repro_diffusion.dir/constraint.cpp.o.d"
  "/root/repo/src/diffusion/controlnet.cpp" "src/diffusion/CMakeFiles/repro_diffusion.dir/controlnet.cpp.o" "gcc" "src/diffusion/CMakeFiles/repro_diffusion.dir/controlnet.cpp.o.d"
  "/root/repo/src/diffusion/pipeline.cpp" "src/diffusion/CMakeFiles/repro_diffusion.dir/pipeline.cpp.o" "gcc" "src/diffusion/CMakeFiles/repro_diffusion.dir/pipeline.cpp.o.d"
  "/root/repo/src/diffusion/resblock.cpp" "src/diffusion/CMakeFiles/repro_diffusion.dir/resblock.cpp.o" "gcc" "src/diffusion/CMakeFiles/repro_diffusion.dir/resblock.cpp.o.d"
  "/root/repo/src/diffusion/sampler.cpp" "src/diffusion/CMakeFiles/repro_diffusion.dir/sampler.cpp.o" "gcc" "src/diffusion/CMakeFiles/repro_diffusion.dir/sampler.cpp.o.d"
  "/root/repo/src/diffusion/schedule.cpp" "src/diffusion/CMakeFiles/repro_diffusion.dir/schedule.cpp.o" "gcc" "src/diffusion/CMakeFiles/repro_diffusion.dir/schedule.cpp.o.d"
  "/root/repo/src/diffusion/unet1d.cpp" "src/diffusion/CMakeFiles/repro_diffusion.dir/unet1d.cpp.o" "gcc" "src/diffusion/CMakeFiles/repro_diffusion.dir/unet1d.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/repro_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/nprint/CMakeFiles/repro_nprint.dir/DependInfo.cmake"
  "/root/repo/build/src/flowgen/CMakeFiles/repro_flowgen.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/repro_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/repro_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
