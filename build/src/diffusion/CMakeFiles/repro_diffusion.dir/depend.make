# Empty dependencies file for repro_diffusion.
# This may be replaced when dependencies are built.
