file(REMOVE_RECURSE
  "CMakeFiles/repro_diffusion.dir/autoencoder.cpp.o"
  "CMakeFiles/repro_diffusion.dir/autoencoder.cpp.o.d"
  "CMakeFiles/repro_diffusion.dir/conditioning.cpp.o"
  "CMakeFiles/repro_diffusion.dir/conditioning.cpp.o.d"
  "CMakeFiles/repro_diffusion.dir/constraint.cpp.o"
  "CMakeFiles/repro_diffusion.dir/constraint.cpp.o.d"
  "CMakeFiles/repro_diffusion.dir/controlnet.cpp.o"
  "CMakeFiles/repro_diffusion.dir/controlnet.cpp.o.d"
  "CMakeFiles/repro_diffusion.dir/pipeline.cpp.o"
  "CMakeFiles/repro_diffusion.dir/pipeline.cpp.o.d"
  "CMakeFiles/repro_diffusion.dir/resblock.cpp.o"
  "CMakeFiles/repro_diffusion.dir/resblock.cpp.o.d"
  "CMakeFiles/repro_diffusion.dir/sampler.cpp.o"
  "CMakeFiles/repro_diffusion.dir/sampler.cpp.o.d"
  "CMakeFiles/repro_diffusion.dir/schedule.cpp.o"
  "CMakeFiles/repro_diffusion.dir/schedule.cpp.o.d"
  "CMakeFiles/repro_diffusion.dir/unet1d.cpp.o"
  "CMakeFiles/repro_diffusion.dir/unet1d.cpp.o.d"
  "librepro_diffusion.a"
  "librepro_diffusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_diffusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
