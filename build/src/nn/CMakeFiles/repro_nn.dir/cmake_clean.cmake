file(REMOVE_RECURSE
  "CMakeFiles/repro_nn.dir/activation.cpp.o"
  "CMakeFiles/repro_nn.dir/activation.cpp.o.d"
  "CMakeFiles/repro_nn.dir/attention.cpp.o"
  "CMakeFiles/repro_nn.dir/attention.cpp.o.d"
  "CMakeFiles/repro_nn.dir/conv1d.cpp.o"
  "CMakeFiles/repro_nn.dir/conv1d.cpp.o.d"
  "CMakeFiles/repro_nn.dir/embedding.cpp.o"
  "CMakeFiles/repro_nn.dir/embedding.cpp.o.d"
  "CMakeFiles/repro_nn.dir/init.cpp.o"
  "CMakeFiles/repro_nn.dir/init.cpp.o.d"
  "CMakeFiles/repro_nn.dir/linear.cpp.o"
  "CMakeFiles/repro_nn.dir/linear.cpp.o.d"
  "CMakeFiles/repro_nn.dir/lora.cpp.o"
  "CMakeFiles/repro_nn.dir/lora.cpp.o.d"
  "CMakeFiles/repro_nn.dir/loss.cpp.o"
  "CMakeFiles/repro_nn.dir/loss.cpp.o.d"
  "CMakeFiles/repro_nn.dir/norm.cpp.o"
  "CMakeFiles/repro_nn.dir/norm.cpp.o.d"
  "CMakeFiles/repro_nn.dir/optimizer.cpp.o"
  "CMakeFiles/repro_nn.dir/optimizer.cpp.o.d"
  "CMakeFiles/repro_nn.dir/serialize.cpp.o"
  "CMakeFiles/repro_nn.dir/serialize.cpp.o.d"
  "CMakeFiles/repro_nn.dir/tensor.cpp.o"
  "CMakeFiles/repro_nn.dir/tensor.cpp.o.d"
  "librepro_nn.a"
  "librepro_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
