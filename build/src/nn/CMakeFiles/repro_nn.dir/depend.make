# Empty dependencies file for repro_nn.
# This may be replaced when dependencies are built.
