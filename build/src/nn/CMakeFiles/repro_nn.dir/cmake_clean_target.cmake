file(REMOVE_RECURSE
  "librepro_nn.a"
)
