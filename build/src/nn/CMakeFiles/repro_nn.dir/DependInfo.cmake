
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activation.cpp" "src/nn/CMakeFiles/repro_nn.dir/activation.cpp.o" "gcc" "src/nn/CMakeFiles/repro_nn.dir/activation.cpp.o.d"
  "/root/repo/src/nn/attention.cpp" "src/nn/CMakeFiles/repro_nn.dir/attention.cpp.o" "gcc" "src/nn/CMakeFiles/repro_nn.dir/attention.cpp.o.d"
  "/root/repo/src/nn/conv1d.cpp" "src/nn/CMakeFiles/repro_nn.dir/conv1d.cpp.o" "gcc" "src/nn/CMakeFiles/repro_nn.dir/conv1d.cpp.o.d"
  "/root/repo/src/nn/embedding.cpp" "src/nn/CMakeFiles/repro_nn.dir/embedding.cpp.o" "gcc" "src/nn/CMakeFiles/repro_nn.dir/embedding.cpp.o.d"
  "/root/repo/src/nn/init.cpp" "src/nn/CMakeFiles/repro_nn.dir/init.cpp.o" "gcc" "src/nn/CMakeFiles/repro_nn.dir/init.cpp.o.d"
  "/root/repo/src/nn/linear.cpp" "src/nn/CMakeFiles/repro_nn.dir/linear.cpp.o" "gcc" "src/nn/CMakeFiles/repro_nn.dir/linear.cpp.o.d"
  "/root/repo/src/nn/lora.cpp" "src/nn/CMakeFiles/repro_nn.dir/lora.cpp.o" "gcc" "src/nn/CMakeFiles/repro_nn.dir/lora.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/nn/CMakeFiles/repro_nn.dir/loss.cpp.o" "gcc" "src/nn/CMakeFiles/repro_nn.dir/loss.cpp.o.d"
  "/root/repo/src/nn/norm.cpp" "src/nn/CMakeFiles/repro_nn.dir/norm.cpp.o" "gcc" "src/nn/CMakeFiles/repro_nn.dir/norm.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/nn/CMakeFiles/repro_nn.dir/optimizer.cpp.o" "gcc" "src/nn/CMakeFiles/repro_nn.dir/optimizer.cpp.o.d"
  "/root/repo/src/nn/serialize.cpp" "src/nn/CMakeFiles/repro_nn.dir/serialize.cpp.o" "gcc" "src/nn/CMakeFiles/repro_nn.dir/serialize.cpp.o.d"
  "/root/repo/src/nn/tensor.cpp" "src/nn/CMakeFiles/repro_nn.dir/tensor.cpp.o" "gcc" "src/nn/CMakeFiles/repro_nn.dir/tensor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/repro_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
