# CMake generated Testfile for 
# Source directory: /root/repo/src/nprint
# Build directory: /root/repo/build/src/nprint
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
