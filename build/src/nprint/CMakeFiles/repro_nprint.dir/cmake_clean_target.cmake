file(REMOVE_RECURSE
  "librepro_nprint.a"
)
