# Empty compiler generated dependencies file for repro_nprint.
# This may be replaced when dependencies are built.
