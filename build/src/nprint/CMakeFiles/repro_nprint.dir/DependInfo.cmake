
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nprint/codec.cpp" "src/nprint/CMakeFiles/repro_nprint.dir/codec.cpp.o" "gcc" "src/nprint/CMakeFiles/repro_nprint.dir/codec.cpp.o.d"
  "/root/repo/src/nprint/image.cpp" "src/nprint/CMakeFiles/repro_nprint.dir/image.cpp.o" "gcc" "src/nprint/CMakeFiles/repro_nprint.dir/image.cpp.o.d"
  "/root/repo/src/nprint/layout.cpp" "src/nprint/CMakeFiles/repro_nprint.dir/layout.cpp.o" "gcc" "src/nprint/CMakeFiles/repro_nprint.dir/layout.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/repro_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/repro_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
