file(REMOVE_RECURSE
  "CMakeFiles/repro_nprint.dir/codec.cpp.o"
  "CMakeFiles/repro_nprint.dir/codec.cpp.o.d"
  "CMakeFiles/repro_nprint.dir/image.cpp.o"
  "CMakeFiles/repro_nprint.dir/image.cpp.o.d"
  "CMakeFiles/repro_nprint.dir/layout.cpp.o"
  "CMakeFiles/repro_nprint.dir/layout.cpp.o.d"
  "librepro_nprint.a"
  "librepro_nprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_nprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
