file(REMOVE_RECURSE
  "CMakeFiles/repro_common.dir/env.cpp.o"
  "CMakeFiles/repro_common.dir/env.cpp.o.d"
  "CMakeFiles/repro_common.dir/logging.cpp.o"
  "CMakeFiles/repro_common.dir/logging.cpp.o.d"
  "CMakeFiles/repro_common.dir/rng.cpp.o"
  "CMakeFiles/repro_common.dir/rng.cpp.o.d"
  "CMakeFiles/repro_common.dir/stats.cpp.o"
  "CMakeFiles/repro_common.dir/stats.cpp.o.d"
  "librepro_common.a"
  "librepro_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
