file(REMOVE_RECURSE
  "librepro_common.a"
)
