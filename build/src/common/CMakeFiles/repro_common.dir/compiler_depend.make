# Empty compiler generated dependencies file for repro_common.
# This may be replaced when dependencies are built.
