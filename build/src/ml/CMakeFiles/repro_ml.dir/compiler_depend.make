# Empty compiler generated dependencies file for repro_ml.
# This may be replaced when dependencies are built.
