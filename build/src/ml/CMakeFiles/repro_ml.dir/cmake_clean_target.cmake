file(REMOVE_RECURSE
  "librepro_ml.a"
)
