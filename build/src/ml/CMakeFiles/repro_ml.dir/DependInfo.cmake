
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/decision_tree.cpp" "src/ml/CMakeFiles/repro_ml.dir/decision_tree.cpp.o" "gcc" "src/ml/CMakeFiles/repro_ml.dir/decision_tree.cpp.o.d"
  "/root/repo/src/ml/features.cpp" "src/ml/CMakeFiles/repro_ml.dir/features.cpp.o" "gcc" "src/ml/CMakeFiles/repro_ml.dir/features.cpp.o.d"
  "/root/repo/src/ml/metrics.cpp" "src/ml/CMakeFiles/repro_ml.dir/metrics.cpp.o" "gcc" "src/ml/CMakeFiles/repro_ml.dir/metrics.cpp.o.d"
  "/root/repo/src/ml/random_forest.cpp" "src/ml/CMakeFiles/repro_ml.dir/random_forest.cpp.o" "gcc" "src/ml/CMakeFiles/repro_ml.dir/random_forest.cpp.o.d"
  "/root/repo/src/ml/split.cpp" "src/ml/CMakeFiles/repro_ml.dir/split.cpp.o" "gcc" "src/ml/CMakeFiles/repro_ml.dir/split.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nprint/CMakeFiles/repro_nprint.dir/DependInfo.cmake"
  "/root/repo/build/src/gan/CMakeFiles/repro_gan.dir/DependInfo.cmake"
  "/root/repo/build/src/flowgen/CMakeFiles/repro_flowgen.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/repro_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/repro_net.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/repro_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
