file(REMOVE_RECURSE
  "CMakeFiles/repro_ml.dir/decision_tree.cpp.o"
  "CMakeFiles/repro_ml.dir/decision_tree.cpp.o.d"
  "CMakeFiles/repro_ml.dir/features.cpp.o"
  "CMakeFiles/repro_ml.dir/features.cpp.o.d"
  "CMakeFiles/repro_ml.dir/metrics.cpp.o"
  "CMakeFiles/repro_ml.dir/metrics.cpp.o.d"
  "CMakeFiles/repro_ml.dir/random_forest.cpp.o"
  "CMakeFiles/repro_ml.dir/random_forest.cpp.o.d"
  "CMakeFiles/repro_ml.dir/split.cpp.o"
  "CMakeFiles/repro_ml.dir/split.cpp.o.d"
  "librepro_ml.a"
  "librepro_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
