# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("net")
subdirs("nprint")
subdirs("flowgen")
subdirs("nn")
subdirs("diffusion")
subdirs("gan")
subdirs("ml")
subdirs("eval")
subdirs("replay")
