file(REMOVE_RECURSE
  "CMakeFiles/repro_flowgen.dir/app_profile.cpp.o"
  "CMakeFiles/repro_flowgen.dir/app_profile.cpp.o.d"
  "CMakeFiles/repro_flowgen.dir/catalog.cpp.o"
  "CMakeFiles/repro_flowgen.dir/catalog.cpp.o.d"
  "CMakeFiles/repro_flowgen.dir/dataset.cpp.o"
  "CMakeFiles/repro_flowgen.dir/dataset.cpp.o.d"
  "CMakeFiles/repro_flowgen.dir/generator.cpp.o"
  "CMakeFiles/repro_flowgen.dir/generator.cpp.o.d"
  "CMakeFiles/repro_flowgen.dir/icmp_session.cpp.o"
  "CMakeFiles/repro_flowgen.dir/icmp_session.cpp.o.d"
  "CMakeFiles/repro_flowgen.dir/tcp_session.cpp.o"
  "CMakeFiles/repro_flowgen.dir/tcp_session.cpp.o.d"
  "CMakeFiles/repro_flowgen.dir/udp_session.cpp.o"
  "CMakeFiles/repro_flowgen.dir/udp_session.cpp.o.d"
  "librepro_flowgen.a"
  "librepro_flowgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_flowgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
