file(REMOVE_RECURSE
  "librepro_flowgen.a"
)
