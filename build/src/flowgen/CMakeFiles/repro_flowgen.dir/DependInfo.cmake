
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flowgen/app_profile.cpp" "src/flowgen/CMakeFiles/repro_flowgen.dir/app_profile.cpp.o" "gcc" "src/flowgen/CMakeFiles/repro_flowgen.dir/app_profile.cpp.o.d"
  "/root/repo/src/flowgen/catalog.cpp" "src/flowgen/CMakeFiles/repro_flowgen.dir/catalog.cpp.o" "gcc" "src/flowgen/CMakeFiles/repro_flowgen.dir/catalog.cpp.o.d"
  "/root/repo/src/flowgen/dataset.cpp" "src/flowgen/CMakeFiles/repro_flowgen.dir/dataset.cpp.o" "gcc" "src/flowgen/CMakeFiles/repro_flowgen.dir/dataset.cpp.o.d"
  "/root/repo/src/flowgen/generator.cpp" "src/flowgen/CMakeFiles/repro_flowgen.dir/generator.cpp.o" "gcc" "src/flowgen/CMakeFiles/repro_flowgen.dir/generator.cpp.o.d"
  "/root/repo/src/flowgen/icmp_session.cpp" "src/flowgen/CMakeFiles/repro_flowgen.dir/icmp_session.cpp.o" "gcc" "src/flowgen/CMakeFiles/repro_flowgen.dir/icmp_session.cpp.o.d"
  "/root/repo/src/flowgen/tcp_session.cpp" "src/flowgen/CMakeFiles/repro_flowgen.dir/tcp_session.cpp.o" "gcc" "src/flowgen/CMakeFiles/repro_flowgen.dir/tcp_session.cpp.o.d"
  "/root/repo/src/flowgen/udp_session.cpp" "src/flowgen/CMakeFiles/repro_flowgen.dir/udp_session.cpp.o" "gcc" "src/flowgen/CMakeFiles/repro_flowgen.dir/udp_session.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/repro_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/repro_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
