# Empty dependencies file for repro_flowgen.
# This may be replaced when dependencies are built.
