# Empty compiler generated dependencies file for repro_eval.
# This may be replaced when dependencies are built.
