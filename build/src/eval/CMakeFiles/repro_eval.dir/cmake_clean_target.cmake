file(REMOVE_RECURSE
  "librepro_eval.a"
)
