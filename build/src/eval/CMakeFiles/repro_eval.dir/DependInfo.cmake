
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/coverage.cpp" "src/eval/CMakeFiles/repro_eval.dir/coverage.cpp.o" "gcc" "src/eval/CMakeFiles/repro_eval.dir/coverage.cpp.o.d"
  "/root/repo/src/eval/fidelity.cpp" "src/eval/CMakeFiles/repro_eval.dir/fidelity.cpp.o" "gcc" "src/eval/CMakeFiles/repro_eval.dir/fidelity.cpp.o.d"
  "/root/repo/src/eval/report.cpp" "src/eval/CMakeFiles/repro_eval.dir/report.cpp.o" "gcc" "src/eval/CMakeFiles/repro_eval.dir/report.cpp.o.d"
  "/root/repo/src/eval/scenario.cpp" "src/eval/CMakeFiles/repro_eval.dir/scenario.cpp.o" "gcc" "src/eval/CMakeFiles/repro_eval.dir/scenario.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ml/CMakeFiles/repro_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/diffusion/CMakeFiles/repro_diffusion.dir/DependInfo.cmake"
  "/root/repo/build/src/gan/CMakeFiles/repro_gan.dir/DependInfo.cmake"
  "/root/repo/build/src/flowgen/CMakeFiles/repro_flowgen.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/repro_common.dir/DependInfo.cmake"
  "/root/repo/build/src/nprint/CMakeFiles/repro_nprint.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/repro_net.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/repro_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
