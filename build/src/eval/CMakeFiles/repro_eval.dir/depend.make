# Empty dependencies file for repro_eval.
# This may be replaced when dependencies are built.
