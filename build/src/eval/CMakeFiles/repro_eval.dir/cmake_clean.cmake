file(REMOVE_RECURSE
  "CMakeFiles/repro_eval.dir/coverage.cpp.o"
  "CMakeFiles/repro_eval.dir/coverage.cpp.o.d"
  "CMakeFiles/repro_eval.dir/fidelity.cpp.o"
  "CMakeFiles/repro_eval.dir/fidelity.cpp.o.d"
  "CMakeFiles/repro_eval.dir/report.cpp.o"
  "CMakeFiles/repro_eval.dir/report.cpp.o.d"
  "CMakeFiles/repro_eval.dir/scenario.cpp.o"
  "CMakeFiles/repro_eval.dir/scenario.cpp.o.d"
  "librepro_eval.a"
  "librepro_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
