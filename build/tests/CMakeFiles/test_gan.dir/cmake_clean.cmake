file(REMOVE_RECURSE
  "CMakeFiles/test_gan.dir/gan_test.cpp.o"
  "CMakeFiles/test_gan.dir/gan_test.cpp.o.d"
  "test_gan"
  "test_gan.pdb"
  "test_gan[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
