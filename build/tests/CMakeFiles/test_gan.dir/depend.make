# Empty dependencies file for test_gan.
# This may be replaced when dependencies are built.
