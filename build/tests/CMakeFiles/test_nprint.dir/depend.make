# Empty dependencies file for test_nprint.
# This may be replaced when dependencies are built.
