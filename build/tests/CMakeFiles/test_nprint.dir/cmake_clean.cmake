file(REMOVE_RECURSE
  "CMakeFiles/test_nprint.dir/nprint_codec_test.cpp.o"
  "CMakeFiles/test_nprint.dir/nprint_codec_test.cpp.o.d"
  "CMakeFiles/test_nprint.dir/nprint_image_test.cpp.o"
  "CMakeFiles/test_nprint.dir/nprint_image_test.cpp.o.d"
  "CMakeFiles/test_nprint.dir/nprint_layout_test.cpp.o"
  "CMakeFiles/test_nprint.dir/nprint_layout_test.cpp.o.d"
  "test_nprint"
  "test_nprint.pdb"
  "test_nprint[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
