file(REMOVE_RECURSE
  "CMakeFiles/test_nn.dir/nn_gradcheck_test.cpp.o"
  "CMakeFiles/test_nn.dir/nn_gradcheck_test.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn_module_test.cpp.o"
  "CMakeFiles/test_nn.dir/nn_module_test.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn_optimizer_test.cpp.o"
  "CMakeFiles/test_nn.dir/nn_optimizer_test.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn_serialize_test.cpp.o"
  "CMakeFiles/test_nn.dir/nn_serialize_test.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn_tensor_test.cpp.o"
  "CMakeFiles/test_nn.dir/nn_tensor_test.cpp.o.d"
  "test_nn"
  "test_nn.pdb"
  "test_nn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
