file(REMOVE_RECURSE
  "CMakeFiles/test_replay.dir/replay_conntrack_test.cpp.o"
  "CMakeFiles/test_replay.dir/replay_conntrack_test.cpp.o.d"
  "CMakeFiles/test_replay.dir/replay_engine_test.cpp.o"
  "CMakeFiles/test_replay.dir/replay_engine_test.cpp.o.d"
  "test_replay"
  "test_replay.pdb"
  "test_replay[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
