file(REMOVE_RECURSE
  "CMakeFiles/test_diffusion.dir/diffusion_autoencoder_test.cpp.o"
  "CMakeFiles/test_diffusion.dir/diffusion_autoencoder_test.cpp.o.d"
  "CMakeFiles/test_diffusion.dir/diffusion_conditioning_test.cpp.o"
  "CMakeFiles/test_diffusion.dir/diffusion_conditioning_test.cpp.o.d"
  "CMakeFiles/test_diffusion.dir/diffusion_constraint_test.cpp.o"
  "CMakeFiles/test_diffusion.dir/diffusion_constraint_test.cpp.o.d"
  "CMakeFiles/test_diffusion.dir/diffusion_pipeline_test.cpp.o"
  "CMakeFiles/test_diffusion.dir/diffusion_pipeline_test.cpp.o.d"
  "CMakeFiles/test_diffusion.dir/diffusion_sampler_test.cpp.o"
  "CMakeFiles/test_diffusion.dir/diffusion_sampler_test.cpp.o.d"
  "CMakeFiles/test_diffusion.dir/diffusion_schedule_test.cpp.o"
  "CMakeFiles/test_diffusion.dir/diffusion_schedule_test.cpp.o.d"
  "CMakeFiles/test_diffusion.dir/diffusion_unet_test.cpp.o"
  "CMakeFiles/test_diffusion.dir/diffusion_unet_test.cpp.o.d"
  "test_diffusion"
  "test_diffusion.pdb"
  "test_diffusion[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_diffusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
