# Empty compiler generated dependencies file for test_diffusion.
# This may be replaced when dependencies are built.
