file(REMOVE_RECURSE
  "CMakeFiles/test_eval.dir/eval_fidelity_test.cpp.o"
  "CMakeFiles/test_eval.dir/eval_fidelity_test.cpp.o.d"
  "CMakeFiles/test_eval.dir/eval_test.cpp.o"
  "CMakeFiles/test_eval.dir/eval_test.cpp.o.d"
  "test_eval"
  "test_eval.pdb"
  "test_eval[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
