file(REMOVE_RECURSE
  "CMakeFiles/test_flowgen.dir/flowgen_test.cpp.o"
  "CMakeFiles/test_flowgen.dir/flowgen_test.cpp.o.d"
  "test_flowgen"
  "test_flowgen.pdb"
  "test_flowgen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flowgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
