# Empty dependencies file for test_flowgen.
# This may be replaced when dependencies are built.
