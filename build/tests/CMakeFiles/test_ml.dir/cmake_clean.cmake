file(REMOVE_RECURSE
  "CMakeFiles/test_ml.dir/ml_forest_test.cpp.o"
  "CMakeFiles/test_ml.dir/ml_forest_test.cpp.o.d"
  "CMakeFiles/test_ml.dir/ml_metrics_test.cpp.o"
  "CMakeFiles/test_ml.dir/ml_metrics_test.cpp.o.d"
  "CMakeFiles/test_ml.dir/ml_tree_test.cpp.o"
  "CMakeFiles/test_ml.dir/ml_tree_test.cpp.o.d"
  "test_ml"
  "test_ml.pdb"
  "test_ml[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
