# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_nprint[1]_include.cmake")
include("/root/repo/build/tests/test_flowgen[1]_include.cmake")
include("/root/repo/build/tests/test_nn[1]_include.cmake")
include("/root/repo/build/tests/test_diffusion[1]_include.cmake")
include("/root/repo/build/tests/test_gan[1]_include.cmake")
include("/root/repo/build/tests/test_ml[1]_include.cmake")
include("/root/repo/build/tests/test_eval[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_replay[1]_include.cmake")
