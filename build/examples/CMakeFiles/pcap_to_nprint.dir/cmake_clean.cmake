file(REMOVE_RECURSE
  "CMakeFiles/pcap_to_nprint.dir/pcap_to_nprint.cpp.o"
  "CMakeFiles/pcap_to_nprint.dir/pcap_to_nprint.cpp.o.d"
  "pcap_to_nprint"
  "pcap_to_nprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcap_to_nprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
