# Empty compiler generated dependencies file for pcap_to_nprint.
# This may be replaced when dependencies are built.
