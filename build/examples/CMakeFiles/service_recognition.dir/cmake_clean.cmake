file(REMOVE_RECURSE
  "CMakeFiles/service_recognition.dir/service_recognition.cpp.o"
  "CMakeFiles/service_recognition.dir/service_recognition.cpp.o.d"
  "service_recognition"
  "service_recognition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/service_recognition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
