# Empty compiler generated dependencies file for service_recognition.
# This may be replaced when dependencies are built.
