# Empty compiler generated dependencies file for text_to_traffic.
# This may be replaced when dependencies are built.
