file(REMOVE_RECURSE
  "CMakeFiles/text_to_traffic.dir/text_to_traffic.cpp.o"
  "CMakeFiles/text_to_traffic.dir/text_to_traffic.cpp.o.d"
  "text_to_traffic"
  "text_to_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_to_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
