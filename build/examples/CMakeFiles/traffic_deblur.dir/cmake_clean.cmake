file(REMOVE_RECURSE
  "CMakeFiles/traffic_deblur.dir/traffic_deblur.cpp.o"
  "CMakeFiles/traffic_deblur.dir/traffic_deblur.cpp.o.d"
  "traffic_deblur"
  "traffic_deblur.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_deblur.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
