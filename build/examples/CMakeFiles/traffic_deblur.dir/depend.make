# Empty dependencies file for traffic_deblur.
# This may be replaced when dependencies are built.
