// pcap <-> nprint converter utility: the representation layer of the
// paper as a standalone tool. Reads any (raw-IP or Ethernet) pcap,
// assembles flows, and emits per-flow nprint artifacts: the bit-level
// CSV (the nprint tool's format) and the Figure-2-style PPM image.
//
// With no arguments it demonstrates itself on a synthetic capture.
//
// Usage:
//   pcap_to_nprint [input.pcap] [max_packets_per_flow]
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "common/rng.hpp"
#include "flowgen/generator.hpp"
#include "net/pcap.hpp"
#include "nprint/codec.hpp"
#include "nprint/image.hpp"

using namespace repro;

int main(int argc, char** argv) {
  std::string input = argc > 1 ? argv[1] : "";
  const std::size_t max_packets =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 32;

  if (input.empty()) {
    // Self-demo: synthesize a small mixed capture first.
    input = "pcap_to_nprint_demo.pcap";
    Rng rng(5);
    std::vector<net::Flow> flows;
    flows.push_back(flowgen::generate_flow(flowgen::App::kNetflix, 12, rng));
    flows.push_back(flowgen::generate_flow(flowgen::App::kTeams, 12, rng));
    flows.push_back(flowgen::generate_flow(flowgen::App::kOther, 8, rng));
    net::write_pcap_file(input, net::flatten_flows(flows));
    std::printf("no input given; wrote demo capture %s\n", input.c_str());
  }

  const auto packets = net::read_pcap_file(input);
  const auto flows = net::assemble_flows(packets);
  std::printf("%s: %zu packets in %zu flows\n", input.c_str(), packets.size(),
              flows.size());

  for (std::size_t i = 0; i < flows.size(); ++i) {
    const nprint::Matrix matrix =
        nprint::encode_flow(flows[i], max_packets);
    const std::string base = "flow_" + std::to_string(i);

    std::ofstream csv(base + ".nprint.csv");
    csv << nprint::to_csv(matrix);
    nprint::write_ppm(base + ".ppm", nprint::render(matrix));

    std::printf("  %s -> %s.nprint.csv (%zux%zu), %s.ppm  [%s, %zu pkts]\n",
                flows[i].key.to_string().c_str(), base.c_str(), matrix.rows(),
                matrix.cols(), base.c_str(),
                net::proto_name(flows[i].dominant_protocol()).c_str(),
                flows[i].packet_count());
  }
  std::printf("round-trip check: decoding flow_0 back to packets...\n");
  if (!flows.empty()) {
    const nprint::Matrix matrix = nprint::encode_flow(flows[0], max_packets);
    const net::Flow decoded = nprint::decode_flow(matrix);
    std::printf("  %zu packets decoded, dominant protocol %s\n",
                decoded.packet_count(),
                net::proto_name(decoded.dominant_protocol()).c_str());
  }
  return 0;
}
