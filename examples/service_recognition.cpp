// The paper's case study end-to-end (§2.2/§3.2): service recognition
// over 4 macro services / 11 micro applications with a Random Forest,
// showing how synthetic data from the diffusion pipeline can stand in
// for real data on either side of the train/test split — and how the
// same test looks when the synthetic side comes from a GAN baseline.
//
// Scale with REPRO_FLOWS_PER_CLASS / REPRO_SYN_PER_CLASS etc. (see
// bench/bench_common.hpp for the full list of knobs).
#include <cstdio>

#include "common/env.hpp"
#include "diffusion/pipeline.hpp"
#include "eval/report.hpp"
#include "eval/scenario.hpp"
#include "flowgen/dataset.hpp"
#include "gan/netflow_gan.hpp"
#include "ml/split.hpp"

using namespace repro;

int main() {
  const std::size_t flows_per_class = env_size("REPRO_FLOWS_PER_CLASS", 25);
  const std::size_t syn_per_class = env_size("REPRO_SYN_PER_CLASS", 12);

  // --- The Table 1 style dataset (scaled). ---
  Rng rng(7);
  const flowgen::Dataset real =
      flowgen::build_table1_dataset(flows_per_class, rng);
  std::printf("dataset: %zu flows over %zu applications\n", real.size(),
              flowgen::kNumApps);

  // 80-20 stratified split.
  std::vector<std::size_t> train_idx, test_idx;
  Rng split_rng(8);
  ml::stratified_split_indices(real.micro_labels(), 0.2, split_rng,
                               train_idx, test_idx);
  std::vector<net::Flow> train_flows, test_flows;
  for (std::size_t i : train_idx) train_flows.push_back(real.flows[i]);
  for (std::size_t i : test_idx) test_flows.push_back(real.flows[i]);

  // --- Fit the generative pipeline on the training flows. ---
  // The calibrated configuration from bench/bench_common.hpp.
  diffusion::PipelineConfig config;
  config.packets = 16;
  config.autoencoder.hidden_dim = 256;
  config.autoencoder.latent_dim = 40;
  config.ae_max_rows = 3500;
  config.unet.base_channels = 24;
  config.unet.temb_dim = 48;
  config.ae_epochs = env_size("REPRO_AE_EPOCHS", 25);
  config.diffusion_epochs = env_size("REPRO_DIFF_EPOCHS", 15);
  config.control_epochs = env_size("REPRO_CTRL_EPOCHS", 8);
  std::vector<std::string> names;
  for (std::size_t i = 0; i < flowgen::kNumApps; ++i) {
    names.push_back(flowgen::app_name(static_cast<flowgen::App>(i)));
  }
  diffusion::TraceDiffusion pipeline(config, names);
  flowgen::Dataset train_ds;
  train_ds.flows = train_flows;
  std::printf("fitting the diffusion pipeline on %zu flows...\n",
              train_ds.size());
  pipeline.fit(train_ds);

  // Balanced synthetic dataset (equal prompts per class — §3.2 Coverage).
  diffusion::GenerateOptions opts;
  opts.ddim_steps = env_size("REPRO_DDIM_STEPS", 15);
  const auto synthetic = pipeline.generate_dataset(
      std::vector<std::size_t>(flowgen::kNumApps, syn_per_class), opts);
  std::printf("generated %zu synthetic flows\n", synthetic.size());

  // --- GAN baseline for comparison. ---
  gan::GanConfig gan_cfg;
  gan_cfg.num_classes = flowgen::kNumApps;
  gan_cfg.epochs = env_size("REPRO_GAN_EPOCHS", 200);
  gan::NetFlowGan baseline(gan_cfg);
  baseline.fit(gan::to_netflow(train_flows));
  const auto gan_synthetic = baseline.sample(synthetic.size());

  // --- Score the four interesting scenarios. ---
  eval::ScenarioConfig sc;
  sc.forest.num_trees = env_size("REPRO_RF_TREES", 30);
  std::vector<std::vector<std::string>> rows;
  auto push = [&rows](const eval::ScenarioResult& r) {
    rows.push_back({r.name, granularity_name(r.granularity),
                    eval::fmt(r.macro_accuracy), eval::fmt(r.micro_accuracy)});
  };
  push(eval::run_real_real(real, eval::Granularity::kNprintPcap, sc));
  push(eval::run_cross_scenario("Real/Synthetic (Ours)", train_flows,
                                synthetic.flows,
                                eval::Granularity::kNprintPcap, sc));
  push(eval::run_cross_scenario("Synthetic/Real (Ours)", synthetic.flows,
                                test_flows, eval::Granularity::kNprintPcap,
                                sc));
  push(eval::run_cross_scenario_netflow("Synthetic/Real (GAN)", gan_synthetic,
                                        gan::to_netflow(test_flows), sc));

  std::printf("\n%s\n",
              eval::format_table(
                  {"scenario", "granularity", "macro acc", "micro acc"}, rows)
                  .c_str());
  std::printf("reading: the pipeline's synthetic data transfers to/from real "
              "data at full packet granularity — something NetFlow-level GAN "
              "output cannot offer. bench/table2_rf_scenarios runs this "
              "comparison at calibrated scale with shape checks.\n");
  return 0;
}
