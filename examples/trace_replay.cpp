// Replayable synthetic traces (§3.2 "Expanded scope of downstream tasks"
// and the §4 open challenge): generated traffic is real pcap bytes, so it
// can drive packet-level network functions. This example replays a
// generated dataset through a small stateful software middlebox — a flow
// monitor with a port-based ACL — and prints what the function observed.
#include <cstdio>
#include <map>

#include "diffusion/pipeline.hpp"
#include "flowgen/generator.hpp"
#include "net/pcap.hpp"

using namespace repro;

namespace {

/// A miniature stateful network function: tracks flows, counts bytes,
/// and enforces a deny-list of destination ports.
class FlowMonitor {
 public:
  explicit FlowMonitor(std::vector<std::uint16_t> denied_ports)
      : denied_(std::move(denied_ports)) {}

  /// Processes one wire-format datagram; returns false when dropped.
  bool process(const std::vector<std::uint8_t>& datagram, double timestamp) {
    net::Packet pkt;
    try {
      pkt = net::Packet::parse(datagram, timestamp);
    } catch (const std::exception&) {
      ++malformed_;
      return false;
    }
    const std::uint16_t dport = pkt.tcp   ? pkt.tcp->dst_port
                                : pkt.udp ? pkt.udp->dst_port
                                          : 0;
    for (std::uint16_t denied : denied_) {
      if (dport == denied) {
        ++dropped_;
        return false;
      }
    }
    auto& entry = flows_[net::FlowKey::from_packet(pkt).canonical()];
    entry.packets += 1;
    entry.bytes += datagram.size();
    return true;
  }

  void report() const {
    std::printf("flow monitor: %zu flows, %zu dropped by ACL, %zu "
                "malformed\n",
                flows_.size(), dropped_, malformed_);
    for (const auto& [key, entry] : flows_) {
      std::printf("  %-55s %4zu pkts %8zu bytes\n", key.to_string().c_str(),
                  entry.packets, entry.bytes);
    }
  }

 private:
  struct Entry {
    std::size_t packets = 0;
    std::size_t bytes = 0;
  };
  std::vector<std::uint16_t> denied_;
  std::map<net::FlowKey, Entry> flows_;
  std::size_t dropped_ = 0;
  std::size_t malformed_ = 0;
};

}  // namespace

int main() {
  // Train a small pipeline on two classes with very different transports.
  Rng rng(11);
  flowgen::Dataset real;
  for (int i = 0; i < 8; ++i) {
    net::Flow a = flowgen::generate_flow(flowgen::App::kTwitch, rng);
    a.label = 0;
    real.flows.push_back(std::move(a));
    net::Flow b = flowgen::generate_flow(flowgen::App::kZoom, rng);
    b.label = 1;
    real.flows.push_back(std::move(b));
  }
  diffusion::PipelineConfig config;
  config.packets = 16;
  config.autoencoder.latent_dim = 16;
  config.unet.base_channels = 16;
  config.timesteps = 50;
  config.ae_epochs = 15;
  config.diffusion_epochs = 8;
  config.control_epochs = 5;
  diffusion::TraceDiffusion pipeline(config, {"twitch", "zoom"});
  std::printf("training pipeline on %zu real flows...\n", real.size());
  pipeline.fit(real);

  diffusion::GenerateOptions opts;
  opts.count = 4;
  opts.ddim_steps = 10;
  auto flows = pipeline.generate(0, opts);
  auto zoom_flows = pipeline.generate(1, opts);
  flows.insert(flows.end(), zoom_flows.begin(), zoom_flows.end());

  // Persist the synthetic trace, then replay the *file* through the
  // network function — exactly how a tcpreplay-style harness would.
  const std::string path = "trace_replay_synthetic.pcap";
  net::write_pcap_file(path, net::flatten_flows(flows));
  std::printf("wrote %s\n", path.c_str());

  FlowMonitor monitor({8801});  // deny Zoom media traffic
  const auto packets = net::read_pcap_file(path);
  std::size_t forwarded = 0;
  for (const auto& pkt : packets) {
    if (monitor.process(pkt.serialize(), pkt.timestamp)) ++forwarded;
  }
  std::printf("replayed %zu packets, %zu forwarded\n", packets.size(),
              forwarded);
  monitor.report();
  std::printf("\nnote: the generated Zoom flows hit the port-8801 ACL — the "
              "synthetic trace exercises the network function the same way "
              "real traffic would.\n");
  return 0;
}
