// Traffic deblurring (§4's research-agenda item, implemented): restore
// the missing packets of a partially captured flow with diffusion
// inpainting. A capture with holes (dropped by a sampler, a lossy tap,
// or privacy redaction) is completed so that the observed packets are
// preserved verbatim and the holes are filled with class-consistent
// synthetic packets.
#include <cstdio>

#include "diffusion/pipeline.hpp"
#include "flowgen/generator.hpp"
#include "net/pcap.hpp"

using namespace repro;

int main() {
  Rng rng(21);
  flowgen::Dataset real;
  for (int i = 0; i < 10; ++i) {
    net::Flow a = flowgen::generate_flow(flowgen::App::kNetflix, rng);
    a.label = 0;
    real.flows.push_back(std::move(a));
    net::Flow b = flowgen::generate_flow(flowgen::App::kMeet, rng);
    b.label = 1;
    real.flows.push_back(std::move(b));
  }

  diffusion::PipelineConfig config;
  config.packets = 16;
  config.autoencoder.hidden_dim = 192;
  config.autoencoder.latent_dim = 24;
  config.unet.base_channels = 16;
  config.timesteps = 50;
  config.ae_epochs = 15;
  config.diffusion_epochs = 10;
  config.control_epochs = 6;
  diffusion::TraceDiffusion pipeline(config, {"netflix", "meet"});
  std::printf("training on %zu flows...\n", real.size());
  pipeline.fit(real);

  // A fresh flow, then a lossy capture of it: packets 3..10 missing.
  net::Flow original = flowgen::generate_flow(flowgen::App::kMeet, 16, rng);
  original.label = 1;
  std::vector<bool> known(16, true);
  for (std::size_t i = 3; i <= 10; ++i) known[i] = false;
  net::Flow corrupted = original;
  for (std::size_t i = 0; i < corrupted.packets.size(); ++i) {
    if (!known[i]) {
      corrupted.packets[i] = net::Packet{};
      corrupted.packets[i].udp = net::UdpHeader{};
      corrupted.packets[i].ip.protocol = net::IpProto::kUdp;
    }
  }
  std::printf("corrupted capture: 8 of 16 packets blanked\n");

  diffusion::GenerateOptions opts;
  opts.ddim_steps = 12;
  const net::Flow restored = pipeline.deblur(corrupted, known, 1, opts);
  std::printf("restored flow: %zu packets\n", restored.packet_count());
  std::size_t verbatim = 0;
  for (std::size_t i = 0; i < restored.packets.size() && i < known.size();
       ++i) {
    const char* source = "synthesized";
    if (i < original.packets.size() && known[i]) {
      ++verbatim;
      source = "observed (verbatim)";
    }
    const auto& pkt = restored.packets[i];
    std::printf("  pkt %2zu: %s %4zu bytes  [%s]\n", i,
                net::proto_name(pkt.ip.protocol).c_str(),
                pkt.datagram_length(), source);
  }
  std::printf("%zu observed packets preserved; holes filled with "
              "class-consistent packets.\n",
              verbatim);
  net::write_pcap_file("traffic_deblur_restored.pcap", restored.packets);
  std::printf("wrote traffic_deblur_restored.pcap\n");
  return 0;
}
