// Quickstart: the smallest useful tour of the library.
//
//   1. synthesize a tiny labeled "real" dataset (2 classes),
//   2. fit the text-to-traffic diffusion pipeline on it,
//   3. generate flows from a class prompt,
//   4. write them to a pcap file any tool can open.
//
// Runs in well under a minute on a laptop core. See
// examples/service_recognition.cpp for the paper's full case study.
#include <cstdio>

#include "diffusion/pipeline.hpp"
#include "flowgen/generator.hpp"
#include "net/pcap.hpp"

using namespace repro;

int main() {
  // 1. A tiny dataset: 10 Netflix (TCP) and 10 Teams (UDP) flows.
  Rng rng(42);
  flowgen::Dataset real;
  for (int i = 0; i < 10; ++i) {
    net::Flow a = flowgen::generate_flow(flowgen::App::kNetflix, rng);
    a.label = 0;
    real.flows.push_back(std::move(a));
    net::Flow b = flowgen::generate_flow(flowgen::App::kTeams, rng);
    b.label = 1;
    real.flows.push_back(std::move(b));
  }
  std::printf("built %zu labeled flows\n", real.size());

  // 2. A small pipeline configuration (see PipelineConfig for the knobs).
  diffusion::PipelineConfig config;
  config.packets = 16;            // flow-image height
  config.autoencoder.latent_dim = 16;
  config.unet.base_channels = 16;
  config.timesteps = 50;
  config.ae_epochs = 15;
  config.diffusion_epochs = 10;
  config.control_epochs = 5;

  diffusion::TraceDiffusion pipeline(config, {"netflix", "teams"});
  std::printf("training (autoencoder -> diffusion -> control)...\n");
  const auto stats = pipeline.fit(real);
  std::printf("trained %zu-parameter U-Net; losses: ae %.3f, diffusion %.3f\n",
              stats.unet_parameters, stats.ae_final_loss,
              stats.diffusion_final_loss);

  // 3. Text-to-traffic: prompts are "Type-<k>" or class names.
  diffusion::GenerateOptions opts;
  opts.count = 5;
  opts.ddim_steps = 10;
  const auto flows = pipeline.generate_from_prompt("Type-1", opts);
  std::printf("generated %zu flows for prompt 'Type-1' (%s)\n", flows.size(),
              pipeline.prompts().class_name(1).c_str());
  for (const auto& flow : flows) {
    std::printf("  %zu packets, dominant protocol %s\n", flow.packet_count(),
                net::proto_name(flow.dominant_protocol()).c_str());
  }

  // 4. Replayable output: genuine pcap bytes.
  std::vector<net::Packet> packets = net::flatten_flows(flows);
  net::write_pcap_file("quickstart_synthetic.pcap", packets);
  std::printf("wrote quickstart_synthetic.pcap (%zu packets) — open it in "
              "Wireshark.\n",
              packets.size());
  return 0;
}
