// Text-to-traffic CLI (§3 headline capability): type a prompt, get a
// pcap. Trains once over the full 11-application catalog, then turns
// prompts ("Type-4", "teams", "zoom") into labeled traces plus the
// Figure 2-style image of the first generated flow.
//
// Usage:
//   text_to_traffic                     # generates for "Type-0"
//   text_to_traffic teams 8             # 8 Teams flows
//   text_to_traffic Type-3 4 out.pcap   # custom output path
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/env.hpp"
#include "diffusion/pipeline.hpp"
#include "flowgen/dataset.hpp"
#include "net/pcap.hpp"
#include "nprint/image.hpp"

using namespace repro;

int main(int argc, char** argv) {
  const std::string prompt = argc > 1 ? argv[1] : "Type-0";
  const std::size_t count =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 4;
  const std::string out_path =
      argc > 3 ? argv[3] : "text_to_traffic.pcap";

  Rng rng(3);
  const flowgen::Dataset real = flowgen::build_uniform_dataset(
      env_size("REPRO_TRAIN_PER_CLASS", 12), rng);

  diffusion::PipelineConfig config;
  config.packets = 32;
  config.autoencoder.hidden_dim = 192;
  config.autoencoder.latent_dim = 24;
  config.unet.base_channels = 24;
  config.ae_epochs = env_size("REPRO_AE_EPOCHS", 12);
  config.diffusion_epochs = env_size("REPRO_DIFF_EPOCHS", 10);
  config.control_epochs = env_size("REPRO_CTRL_EPOCHS", 6);
  std::vector<std::string> names;
  for (std::size_t i = 0; i < flowgen::kNumApps; ++i) {
    names.push_back(flowgen::app_name(static_cast<flowgen::App>(i)));
  }
  diffusion::TraceDiffusion pipeline(config, names);
  std::printf("training on %zu flows across %zu classes...\n", real.size(),
              flowgen::kNumApps);
  pipeline.fit(real);

  const auto class_id = pipeline.prompts().parse_prompt(prompt);
  if (!class_id || *class_id == pipeline.prompts().null_id()) {
    std::fprintf(stderr, "unknown prompt '%s'. Try 'Type-0'..'Type-10' or "
                 "an application name (netflix, teams, ...).\n",
                 prompt.c_str());
    return 1;
  }
  std::printf("prompt '%s' -> class %d (%s), generating %zu flows...\n",
              prompt.c_str(), *class_id,
              pipeline.prompts().class_name(*class_id).c_str(), count);

  diffusion::GenerateOptions opts;
  opts.count = count;
  opts.ddim_steps = env_size("REPRO_DDIM_STEPS", 15);
  const auto flows = pipeline.generate_from_prompt(prompt, opts);
  for (const auto& flow : flows) {
    std::printf("  flow: %zu packets, %zu bytes, dominant %s\n",
                flow.packet_count(), flow.byte_count(),
                net::proto_name(flow.dominant_protocol()).c_str());
  }
  net::write_pcap_file(out_path, net::flatten_flows(flows));
  std::printf("wrote %s\n", out_path.c_str());

  const nprint::Matrix matrix =
      pipeline.generate_matrix(*class_id, opts);
  nprint::write_ppm("text_to_traffic.ppm", nprint::render(matrix));
  std::printf("wrote text_to_traffic.ppm (Figure 2-style flow image)\n");
  return 0;
}
