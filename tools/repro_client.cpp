// repro_client — command-line client for the repro_served socket
// front-end (see src/serve/net/protocol.hpp for the frame format).
//
// Sends `--requests N` generation requests (pipelined on one
// connection), reads the replies, and prints one line per reply:
// request id, status, flow/packet counts, and the FNV-1a content hash
// of the decoded bytes — the same hash the conformance tests compare
// against direct library calls, so two invocations against servers with
// different --lanes settings must print identical hashes.
//
// Usage:
//   repro_client --port P [--model NAME] [--class N] [--count N]
//                [--seed N] [--steps N] [--sampler ddim|ddpm]
//                [--priority high|normal|low] [--deadline-ms D]
//                [--requests N]
//
// The port defaults to REPRO_SERVE_PORT. With --requests N > 1, request
// k uses seed `--seed + k`. Exit code: 0 when every reply was an ok
// response, 1 on any error frame or transport failure, 2 on usage.
#include <cstdio>
#include <string>
#include <vector>

#include "common/env.hpp"
#include "serve/net/client.hpp"

using namespace repro;

namespace {

int run(int argc, char** argv) {
  std::size_t port = env_size(kEnvServePort, 0);
  std::size_t requests = 1;
  double deadline_ms = -1.0;
  serve::GenerateRequest base;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      return i + 1 < argc ? std::string(argv[++i]) : std::string();
    };
    if (arg == "--port") port = parse_size(next()).value_or(port);
    else if (arg == "--model") base.model = next();
    else if (arg == "--class") {
      base.class_id = static_cast<int>(parse_size(next()).value_or(0));
    }
    else if (arg == "--count") base.count = parse_size(next()).value_or(1);
    else if (arg == "--seed") base.seed = parse_size(next()).value_or(0);
    else if (arg == "--steps") {
      base.ddim_steps = parse_size(next()).value_or(base.ddim_steps);
    }
    else if (arg == "--sampler") {
      const std::string name = next();
      if (name == "ddim") base.sampler = diffusion::SamplerKind::kDdim;
      else if (name == "ddpm") base.sampler = diffusion::SamplerKind::kDdpm;
      else {
        std::fprintf(stderr, "repro_client: bad --sampler '%s'\n",
                     name.c_str());
        return 2;
      }
    }
    else if (arg == "--priority") {
      const std::string name = next();
      if (name == "high") base.priority = serve::Priority::kHigh;
      else if (name == "normal") base.priority = serve::Priority::kNormal;
      else if (name == "low") base.priority = serve::Priority::kLow;
      else {
        std::fprintf(stderr, "repro_client: bad --priority '%s'\n",
                     name.c_str());
        return 2;
      }
    }
    else if (arg == "--deadline-ms") {
      deadline_ms = parse_double(next()).value_or(-1.0);
    }
    else if (arg == "--requests") {
      requests = parse_size(next()).value_or(1);
    }
    else {
      std::fprintf(stderr, "repro_client: unknown argument '%s'\n",
                   arg.c_str());
      return 2;
    }
  }
  if (port == 0 || port > 65535) {
    std::fprintf(stderr,
                 "repro_client: --port (or REPRO_SERVE_PORT) required\n");
    return 2;
  }

  try {
    serve::wire::BlockingClient client(
        static_cast<std::uint16_t>(port));
    for (std::size_t k = 0; k < requests; ++k) {
      serve::GenerateRequest req = base;
      req.seed = base.seed + k;
      client.send(req, deadline_ms);
    }

    int failures = 0;
    for (std::size_t k = 0; k < requests; ++k) {
      const auto reply = client.read_reply(120.0);
      if (!reply) {
        std::fprintf(stderr, "repro_client: no reply (timeout or EOF)\n");
        return 1;
      }
      if (!reply->ok()) {
        std::printf("reply: request=%llu ERROR %s: %s\n",
                    static_cast<unsigned long long>(
                        reply->error->request_id),
                    reply->error->error.c_str(),
                    reply->error->message.c_str());
        ++failures;
        continue;
      }
      const auto& resp = *reply->response;
      if (resp.status == "cancelled") {
        std::printf("reply: request=%llu CANCELLED %s\n",
                    static_cast<unsigned long long>(resp.request_id),
                    resp.reason.c_str());
        ++failures;
        continue;
      }
      std::size_t packets = 0;
      for (const auto& flow : resp.flows) packets += flow.packets.size();
      std::printf("reply: request=%llu ok model=%s cache_hit=%d flows=%zu "
                  "packets=%zu batch_flows=%llu hash=%016llx\n",
                  static_cast<unsigned long long>(resp.request_id),
                  resp.model_version.c_str(), resp.cache_hit ? 1 : 0,
                  resp.flows.size(), packets,
                  static_cast<unsigned long long>(resp.batch_flows),
                  static_cast<unsigned long long>(
                      serve::wire::hash_wire_flows(resp.flows)));
    }
    return failures == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "repro_client: %s\n", e.what());
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
