// repro_replay — open-loop replay CLI over src/replay/emit: schedules
// flows with a configurable arrival process toward a target aggregate
// pps, paces them in virtual or real time, and lands packets in a
// null / pcap / network-function-chain sink.
//
//   repro_replay --selftest
//       Fixed-seed virtual-time gate (the `replay` ctest label / CI
//       entry): same-seed runs must produce byte-identical pcaps, the
//       event-conservation invariant must hold (with and without
//       underruns), and a NAT -> strict-conntrack chain must accept
//       every emitted TCP packet at rate. Exits nonzero on any miss.
//
//   repro_replay [--flows N] [--packets N] [--pps X] [--arrival KIND]
//                [--seed S] [--time-scale X] [--duration SECS]
//                [--sink null|pcap|chain] [--out FILE] [--real-time]
//                [--source flowgen|served]
//       One emission run; prints the report. --source served trains a
//       tiny toy model and pulls flows through serve::TraceService
//       (cooperative pump), demonstrating the generation -> wire loop.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "diffusion/pipeline.hpp"
#include "flowgen/generator.hpp"
#include "flowgen/tcp_session.hpp"
#include "replay/conntrack.hpp"
#include "replay/emit/emitter.hpp"
#include "replay/functions.hpp"
#include "serve/registry.hpp"
#include "serve/service.hpp"

using namespace repro;
using replay::emit::Arrival;
using replay::emit::EmitConfig;
using replay::emit::EmitReport;

namespace {

struct Options {
  bool selftest = false;
  bool real_time = false;
  std::size_t flows = 64;
  std::size_t packets = 12;
  double pps = 20000.0;
  Arrival arrival = Arrival::kFixedRate;
  std::uint64_t seed = 1;
  double time_scale = 1.0;
  double duration = 0.0;
  std::string sink = "null";
  std::string source = "flowgen";
  std::string out = "replay.pcap";
};

/// Distinct endpoints per flow so stateful chain functions see one
/// connection per flow (overlapping 5-tuples would collide in the
/// conntrack table mid-run).
std::vector<net::Flow> make_flows(std::size_t flows, std::size_t packets,
                                  std::uint64_t seed) {
  std::vector<net::Flow> out;
  out.reserve(flows);
  Rng rng(seed);
  const auto& profile = flowgen::app_profile(flowgen::App::kNetflix);
  for (std::size_t i = 0; i < flows; ++i) {
    flowgen::Endpoints ep;
    ep.client_addr = 0x0A000001u + static_cast<std::uint32_t>(i % 250);
    ep.server_addr = 0x0D000001u + static_cast<std::uint32_t>((i / 250) % 250);
    ep.client_port = static_cast<std::uint16_t>(40000 + (i % 20000));
    ep.server_port = 443;
    out.push_back(flowgen::generate_tcp_flow(profile, ep, packets, rng));
  }
  return out;
}

void print_report(const EmitReport& report) {
  std::printf(
      "flows scheduled/emitted/underrun: %llu / %llu / %llu\n"
      "packets scheduled/emitted:        %llu / %llu\n"
      "target pps %.0f  achieved pps %.0f  (packets/flow %zu)\n"
      "jitter p50/p95/p99:   %.6fs / %.6fs / %.6fs\n"
      "lateness p50/p95/p99: %.6fs / %.6fs / %.6fs\n"
      "conserved: %s\n",
      static_cast<unsigned long long>(report.flows_scheduled),
      static_cast<unsigned long long>(report.flows_emitted),
      static_cast<unsigned long long>(report.underruns),
      static_cast<unsigned long long>(report.packets_scheduled),
      static_cast<unsigned long long>(report.packets_emitted),
      report.target_pps, report.achieved_pps, report.packets_per_flow,
      report.jitter_p50, report.jitter_p95, report.jitter_p99,
      report.lateness_p50, report.lateness_p95, report.lateness_p99,
      report.conserved() ? "yes" : "NO");
}

/// One virtual-time run of `flows` into a pcap buffer; returns the
/// bytes + report.
std::pair<std::string, EmitReport> pcap_run(const std::vector<net::Flow>& flows,
                                            const EmitConfig& config) {
  replay::emit::VectorFlowSource source(flows);
  replay::emit::VirtualPacer pacer;
  std::ostringstream bytes;
  replay::emit::PcapSink sink(bytes);
  replay::emit::OpenLoopEmitter emitter(config, source, pacer, sink);
  EmitReport report = emitter.run();
  return {bytes.str(), report};
}

int selftest() {
  int failures = 0;
  const auto fail = [&failures](const char* what) {
    std::printf("FAIL: %s\n", what);
    ++failures;
  };

  const std::vector<net::Flow> flows = make_flows(48, 10, 42);
  EmitConfig config;
  config.target_pps = 20000.0;
  config.total_flows = 48;
  config.arrival = Arrival::kExponential;
  config.seed = 7;

  // 1. Determinism: same seed, same flows => byte-identical pcap and
  //    identical accounting.
  const auto [bytes_a, report_a] = pcap_run(flows, config);
  const auto [bytes_b, report_b] = pcap_run(flows, config);
  if (bytes_a.empty() || bytes_a != bytes_b) {
    fail("same-seed virtual-time runs are not byte-identical");
  }
  if (!report_a.conserved()) fail("run A violates event conservation");
  if (report_a.underruns != 0) fail("fully-stocked source underran");
  if (report_a.flows_emitted != 48) fail("run A did not emit all flows");

  // 2. A different seed must change the exponential schedule (sanity
  //    that determinism above is not vacuous).
  EmitConfig reseeded = config;
  reseeded.seed = 8;
  const auto [bytes_c, report_c] = pcap_run(flows, reseeded);
  if (bytes_c == bytes_a) fail("reseeded run produced identical bytes");
  if (!report_c.conserved()) fail("reseeded run violates conservation");

  // 3. Underrun path: schedule more arrivals than the source holds;
  //    wire time must keep moving and conservation must still hold.
  EmitConfig starved = config;
  starved.total_flows = 60;
  const auto [bytes_d, report_d] = pcap_run(flows, starved);
  (void)bytes_d;
  if (report_d.underruns != 12) fail("expected 12 underruns when starved");
  if (!report_d.conserved()) fail("starved run violates conservation");

  // 4. Chain sink at rate: NAT -> strict conntrack must accept every
  //    packet of well-formed generated TCP sessions.
  {
    replay::emit::VectorFlowSource source(flows);
    replay::emit::VirtualPacer pacer;
    replay::emit::ChainSink sink;
    // LAN-side middlebox ordering: the strict firewall sees the
    // recorded (consistent) 5-tuples, then the NAT masquerades
    // outbound sources on egress. NAT-first would break the reply
    // direction of a recorded trace: replies are already addressed to
    // the private client, so conntrack would see two connections.
    auto conntrack = std::make_unique<replay::ConntrackFunction>();
    const auto* tracker = conntrack.get();
    sink.engine().add_function(std::move(conntrack));
    sink.engine().add_function(std::make_unique<replay::SourceNat>(0xC0A80001u));
    replay::emit::OpenLoopEmitter emitter(config, source, pacer, sink);
    const EmitReport report = emitter.run();
    if (!report.conserved()) fail("chain run violates conservation");
    const auto& chain = sink.report();
    if (chain.input_packets != report.packets_emitted) {
      fail("chain saw a different packet count than the emitter sent");
    }
    if (chain.delivered_packets != chain.input_packets) {
      fail("strict chain dropped packets of well-formed sessions");
    }
    if (tracker->stats().tcp_acceptance() != 1.0) {
      fail("conntrack acceptance below 1.0 at rate");
    }
  }

  std::printf("repro_replay selftest: %s (%d failure%s)\n",
              failures == 0 ? "PASS" : "FAIL", failures,
              failures == 1 ? "" : "s");
  return failures == 0 ? 0 : 1;
}

diffusion::PipelineConfig toy_config() {
  diffusion::PipelineConfig cfg;
  cfg.packets = 8;
  cfg.autoencoder.hidden_dim = 48;
  cfg.autoencoder.latent_dim = 8;
  cfg.unet.base_channels = 8;
  cfg.unet.temb_dim = 16;
  cfg.unet.groups = 4;
  cfg.timesteps = 20;
  cfg.ae_epochs = 10;
  cfg.diffusion_epochs = 2;
  cfg.control_epochs = 1;
  cfg.seed = 5;
  return cfg;
}

std::shared_ptr<diffusion::TraceDiffusion> train_toy_model() {
  Rng rng(77);
  flowgen::Dataset ds;
  for (std::size_t i = 0; i < 5; ++i) {
    net::Flow a = flowgen::generate_flow(flowgen::App::kNetflix, 8, rng);
    a.label = 0;
    ds.flows.push_back(std::move(a));
    net::Flow b = flowgen::generate_flow(flowgen::App::kTeams, 8, rng);
    b.label = 1;
    ds.flows.push_back(std::move(b));
  }
  auto pipeline = std::make_shared<diffusion::TraceDiffusion>(
      toy_config(), std::vector<std::string>{"netflix", "teams"});
  pipeline->fit(ds);
  return pipeline;
}

int run(const Options& opt) {
  // Source.
  std::vector<net::Flow> flows;
  serve::ModelRegistry registry;
  std::unique_ptr<serve::TraceService> service;
  std::unique_ptr<replay::emit::FlowSource> source;
  if (opt.source == "served") {
    std::printf("training toy model for the served source...\n");
    registry.install("default", train_toy_model(), "replay-v1");
    serve::ServiceConfig service_config;
    service = std::make_unique<serve::TraceService>(registry, service_config);
    replay::emit::ServedSourceConfig src;
    src.class_id = 0;
    src.seed_base = opt.seed;
    src.total_flows = opt.flows;
    src.ddim_steps = 4;
    source = std::make_unique<replay::emit::ServedFlowSource>(*service, src);
  } else if (opt.source == "flowgen") {
    flows = make_flows(opt.flows, opt.packets, opt.seed);
    source = std::make_unique<replay::emit::VectorFlowSource>(flows);
  } else {
    std::fprintf(stderr, "unknown --source '%s'\n", opt.source.c_str());
    return 2;
  }

  // Pacer.
  replay::emit::VirtualPacer virtual_pacer;
  std::unique_ptr<replay::emit::Pacer> realtime;
  replay::emit::Pacer* pacer = &virtual_pacer;
  if (opt.real_time) {
    realtime = replay::emit::make_realtime_pacer();
    pacer = realtime.get();
  }

  // Sink.
  std::ofstream pcap_out;
  std::unique_ptr<replay::emit::PacketSink> sink;
  const replay::ConntrackFunction* tracker = nullptr;
  if (opt.sink == "pcap") {
    pcap_out.open(opt.out, std::ios::binary);
    if (!pcap_out) {
      std::fprintf(stderr, "cannot open --out '%s'\n", opt.out.c_str());
      return 2;
    }
    sink = std::make_unique<replay::emit::PcapSink>(pcap_out);
  } else if (opt.sink == "chain") {
    auto chain = std::make_unique<replay::emit::ChainSink>();
    // Firewall before NAT (LAN-side ordering); see selftest for why.
    auto conntrack = std::make_unique<replay::ConntrackFunction>();
    tracker = conntrack.get();
    chain->engine().add_function(std::move(conntrack));
    chain->engine().add_function(
        std::make_unique<replay::SourceNat>(0xC0A80001u));
    sink = std::move(chain);
  } else if (opt.sink == "null") {
    sink = std::make_unique<replay::emit::NullSink>();
  } else {
    std::fprintf(stderr, "unknown --sink '%s'\n", opt.sink.c_str());
    return 2;
  }

  EmitConfig config;
  config.target_pps = opt.pps;
  config.total_flows = opt.flows;
  config.duration = opt.duration;
  config.arrival = opt.arrival;
  config.seed = opt.seed;
  config.time_scale = opt.time_scale;

  replay::emit::OpenLoopEmitter emitter(config, *source, *pacer, *sink);
  const EmitReport report = emitter.run();
  print_report(report);
  if (tracker != nullptr) {
    std::printf("chain conntrack acceptance: %.4f\n",
                tracker->stats().tcp_acceptance());
  }
  if (opt.sink == "pcap") {
    std::printf("wrote %s\n", opt.out.c_str());
  }
  return report.conserved() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--selftest") {
      opt.selftest = true;
    } else if (arg == "--real-time") {
      opt.real_time = true;
    } else if (arg == "--flows") {
      opt.flows = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--packets") {
      opt.packets =
          static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--pps") {
      opt.pps = std::strtod(next(), nullptr);
    } else if (arg == "--seed") {
      opt.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--time-scale") {
      opt.time_scale = std::strtod(next(), nullptr);
    } else if (arg == "--duration") {
      opt.duration = std::strtod(next(), nullptr);
    } else if (arg == "--arrival") {
      const std::string kind = next();
      if (kind == "fixed") {
        opt.arrival = Arrival::kFixedRate;
      } else if (kind == "exp") {
        opt.arrival = Arrival::kExponential;
      } else if (kind == "pareto") {
        opt.arrival = Arrival::kParetoBurst;
      } else {
        std::fprintf(stderr, "unknown --arrival '%s'\n", kind.c_str());
        return 2;
      }
    } else if (arg == "--sink") {
      opt.sink = next();
    } else if (arg == "--source") {
      opt.source = next();
    } else if (arg == "--out") {
      opt.out = next();
    } else {
      std::fprintf(stderr,
                   "usage: repro_replay [--selftest] [--flows N] [--packets N]"
                   " [--pps X] [--arrival fixed|exp|pareto] [--seed S]"
                   " [--time-scale X] [--duration SECS]"
                   " [--sink null|pcap|chain] [--out FILE] [--real-time]"
                   " [--source flowgen|served]\n");
      return arg == "--help" ? 0 : 2;
    }
  }
  if (opt.selftest) return selftest();
  return run(opt);
}
