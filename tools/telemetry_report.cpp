// repro_telemetry_report — smoke-drives every instrumented subsystem at
// toy scale with telemetry forced on, then emits all three export
// formats the telemetry layer supports:
//   * the flat text profile report (stdout),
//   * <prefix>.json        — metrics + span tree snapshot,
//   * <prefix>.trace.json  — Chrome trace_event JSON (chrome://tracing).
//
// Doubles as the observability smoke test (registered in ctest): it
// fails loudly if instrumentation stops producing metrics or spans, or
// if the JSON exporter emits nothing.
//
// Usage: repro_telemetry_report [output_prefix]   (default: telemetry_report)
#include <cstdio>
#include <memory>
#include <string>

#include "common/rng.hpp"
#include "common/telemetry/export.hpp"
#include "common/telemetry/metrics.hpp"
#include "common/telemetry/trace.hpp"
#include "diffusion/pipeline.hpp"
#include "flowgen/dataset.hpp"
#include "flowgen/generator.hpp"
#include "gan/netflow_gan.hpp"
#include "ml/features.hpp"
#include "ml/random_forest.hpp"
#include "net/flow.hpp"
#include "replay/conntrack.hpp"
#include "replay/engine.hpp"

using namespace repro;

int main(int argc, char** argv) {
  const std::string prefix = argc > 1 ? argv[1] : "telemetry_report";
  // The whole point of this tool is to exercise the exporters, so force
  // telemetry on regardless of REPRO_TELEMETRY.
  telemetry::set_enabled(true);
  telemetry::Registry::instance().reset();
  telemetry::reset_profile();

  {
    REPRO_SPAN("tool.telemetry_report");

    // flowgen + nprint: a tiny two-class labeled dataset.
    Rng rng(7);
    flowgen::Dataset real;
    for (int i = 0; i < 4; ++i) {
      net::Flow a = flowgen::generate_flow(flowgen::App::kNetflix, rng);
      a.label = 0;
      real.flows.push_back(std::move(a));
      net::Flow b = flowgen::generate_flow(flowgen::App::kTeams, rng);
      b.label = 1;
      real.flows.push_back(std::move(b));
    }
    std::printf("dataset: %zu labeled flows\n", real.size());

    // diffusion (+ nn underneath): smallest viable pipeline.
    diffusion::PipelineConfig cfg;
    cfg.packets = 8;
    cfg.autoencoder.hidden_dim = 32;
    cfg.autoencoder.latent_dim = 8;
    cfg.unet.base_channels = 8;
    cfg.unet.temb_dim = 16;
    cfg.timesteps = 20;
    cfg.ae_epochs = 2;
    cfg.diffusion_epochs = 2;
    cfg.control_epochs = 1;
    diffusion::TraceDiffusion pipeline(cfg, {"netflix", "teams"});
    pipeline.fit(real);
    diffusion::GenerateOptions opts;
    opts.count = 2;
    opts.sampler = diffusion::SamplerKind::kDdim;
    opts.ddim_steps = 4;
    const auto synthetic = pipeline.generate(0, opts);
    std::printf("diffusion: generated %zu flows\n", synthetic.size());

    // gan baseline.
    gan::GanConfig gan_cfg;
    gan_cfg.epochs = 3;
    gan_cfg.num_classes = flowgen::kNumApps;
    gan::NetFlowGan baseline(gan_cfg);
    baseline.fit(gan::to_netflow(real.flows));
    baseline.sample(8);

    // ml: random forest on NetFlow features.
    ml::ForestConfig forest_cfg;
    forest_cfg.num_trees = 5;
    ml::RandomForest forest(forest_cfg);
    const auto features = ml::netflow_features(real.flows);
    forest.fit(features);
    std::printf("ml: forest train accuracy %.2f\n", forest.score(features));

    // replay: drive the conntrack function with the real packets.
    replay::ReplayEngine engine;
    engine.add_function(std::make_unique<replay::ConntrackFunction>());
    const auto report = engine.replay(net::flatten_flows(real.flows));
    std::printf("replay: %zu/%zu packets delivered\n",
                report.delivered_packets, report.input_packets);
  }

  // Export everything the layer can produce.
  std::printf("\n%s", telemetry::profile_text_report().c_str());

  const auto snapshot = telemetry::Registry::instance().snapshot();
  const std::size_t metric_count = snapshot.counters.size() +
                                   snapshot.gauges.size() +
                                   snapshot.histograms.size();
  const std::size_t span_count = telemetry::profile_snapshot().node_count();
  std::printf("\n%zu metrics, %zu span nodes recorded\n", metric_count,
              span_count);

  const std::string json = telemetry::telemetry_json();
  const std::string json_path = telemetry::report_path(prefix + ".json");
  const std::string trace_path =
      telemetry::report_path(prefix + ".trace.json");
  bool ok = true;
  for (const auto& [path, content] :
       {std::pair{json_path, json},
        std::pair{trace_path, telemetry::chrome_trace_json()}}) {
    if (telemetry::write_text_file(path, content)) {
      std::printf("wrote %s (%zu bytes)\n", path.c_str(), content.size());
    } else {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      ok = false;
    }
  }

  // Smoke-test contract: instrumentation and exporters must produce.
  if (!ok || metric_count < 5 || span_count < 5 || json.size() < 64) {
    std::fprintf(stderr,
                 "telemetry smoke FAILED (ok=%d metrics=%zu spans=%zu "
                 "json_bytes=%zu)\n",
                 ok ? 1 : 0, metric_count, span_count, json.size());
    return 1;
  }
  std::printf("telemetry smoke OK\n");
  return 0;
}
