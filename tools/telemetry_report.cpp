// repro_telemetry_report — smoke-drives every instrumented subsystem at
// toy scale with telemetry forced on, then emits all three export
// formats the telemetry layer supports:
//   * the flat text profile report (stdout),
//   * <prefix>.json        — metrics + span tree snapshot,
//   * <prefix>.trace.json  — Chrome trace_event JSON (chrome://tracing).
//
// Doubles as the observability smoke test (registered in ctest): it
// fails loudly if instrumentation stops producing metrics or spans, or
// if the JSON exporter emits nothing.
//
// Usage: repro_telemetry_report [--json] [--top N] [output_prefix]
//   output_prefix defaults to telemetry_report
//   --top N   also list the N slowest spans (by inclusive wall time)
//   --json    print the full telemetry JSON document to stdout instead
//             of the progress/profile text (files are still written)
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/env.hpp"

#include "common/rng.hpp"
#include "common/telemetry/export.hpp"
#include "common/telemetry/metrics.hpp"
#include "common/telemetry/trace.hpp"
#include "diffusion/pipeline.hpp"
#include "flowgen/dataset.hpp"
#include "flowgen/generator.hpp"
#include "gan/netflow_gan.hpp"
#include "ml/features.hpp"
#include "ml/random_forest.hpp"
#include "net/flow.hpp"
#include "replay/conntrack.hpp"
#include "replay/engine.hpp"

using namespace repro;

namespace {

/// Depth-first flatten of the profile tree (excluding the synthetic
/// root), for the --top slowest-span listing.
void flatten_spans(const telemetry::SpanReport& node,
                   std::vector<const telemetry::SpanReport*>& out) {
  for (const auto& child : node.children) {
    out.push_back(&child);
    flatten_spans(child, out);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string prefix = "telemetry_report";
  bool json_mode = false;
  std::size_t top = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") json_mode = true;
    else if (arg == "--top" && i + 1 < argc)
      top = parse_size(argv[++i]).value_or(top);
    else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "telemetry_report: unknown option '%s'\n",
                   arg.c_str());
      return 2;
    } else {
      prefix = arg;
    }
  }
  // Progress prints would corrupt the machine-readable stdout.
  const bool quiet = json_mode;
  // The whole point of this tool is to exercise the exporters, so force
  // telemetry on regardless of REPRO_TELEMETRY.
  telemetry::set_enabled(true);
  telemetry::Registry::instance().reset();
  telemetry::reset_profile();

  {
    REPRO_SPAN("tool.telemetry_report");

    // flowgen + nprint: a tiny two-class labeled dataset.
    Rng rng(7);
    flowgen::Dataset real;
    for (int i = 0; i < 4; ++i) {
      net::Flow a = flowgen::generate_flow(flowgen::App::kNetflix, rng);
      a.label = 0;
      real.flows.push_back(std::move(a));
      net::Flow b = flowgen::generate_flow(flowgen::App::kTeams, rng);
      b.label = 1;
      real.flows.push_back(std::move(b));
    }
    if (!quiet) std::printf("dataset: %zu labeled flows\n", real.size());

    // diffusion (+ nn underneath): smallest viable pipeline.
    diffusion::PipelineConfig cfg;
    cfg.packets = 8;
    cfg.autoencoder.hidden_dim = 32;
    cfg.autoencoder.latent_dim = 8;
    cfg.unet.base_channels = 8;
    cfg.unet.temb_dim = 16;
    cfg.timesteps = 20;
    cfg.ae_epochs = 2;
    cfg.diffusion_epochs = 2;
    cfg.control_epochs = 1;
    diffusion::TraceDiffusion pipeline(cfg, {"netflix", "teams"});
    pipeline.fit(real);
    diffusion::GenerateOptions opts;
    opts.count = 2;
    opts.sampler = diffusion::SamplerKind::kDdim;
    opts.ddim_steps = 4;
    const auto synthetic = pipeline.generate(0, opts);
    if (!quiet) {
      std::printf("diffusion: generated %zu flows\n", synthetic.size());
    }

    // gan baseline.
    gan::GanConfig gan_cfg;
    gan_cfg.epochs = 3;
    gan_cfg.num_classes = flowgen::kNumApps;
    gan::NetFlowGan baseline(gan_cfg);
    baseline.fit(gan::to_netflow(real.flows));
    baseline.sample(8);

    // ml: random forest on NetFlow features.
    ml::ForestConfig forest_cfg;
    forest_cfg.num_trees = 5;
    ml::RandomForest forest(forest_cfg);
    const auto features = ml::netflow_features(real.flows);
    forest.fit(features);
    if (!quiet) {
      std::printf("ml: forest train accuracy %.2f\n",
                  forest.score(features));
    }

    // replay: drive the conntrack function with the real packets.
    replay::ReplayEngine engine;
    engine.add_function(std::make_unique<replay::ConntrackFunction>());
    const auto report = engine.replay(net::flatten_flows(real.flows));
    if (!quiet) {
      std::printf("replay: %zu/%zu packets delivered\n",
                  report.delivered_packets, report.input_packets);
    }
  }

  // Export everything the layer can produce.
  if (!quiet) std::printf("\n%s", telemetry::profile_text_report().c_str());

  const auto snapshot = telemetry::Registry::instance().snapshot();
  const std::size_t metric_count = snapshot.counters.size() +
                                   snapshot.gauges.size() +
                                   snapshot.histograms.size();
  const telemetry::SpanReport profile = telemetry::profile_snapshot();
  const std::size_t span_count = profile.node_count();
  if (!quiet) {
    std::printf("\n%zu metrics, %zu span nodes recorded\n", metric_count,
                span_count);
  }

  if (top > 0 && !quiet) {
    std::vector<const telemetry::SpanReport*> nodes;
    flatten_spans(profile, nodes);
    std::sort(nodes.begin(), nodes.end(),
              [](const telemetry::SpanReport* a,
                 const telemetry::SpanReport* b) {
                return a->total_seconds > b->total_seconds;
              });
    if (nodes.size() > top) nodes.resize(top);
    std::printf("\ntop %zu spans by inclusive wall time:\n", nodes.size());
    for (const telemetry::SpanReport* node : nodes) {
      std::printf("  %-40s calls=%-8llu total=%.3fms self=%.3fms\n",
                  node->name.c_str(),
                  static_cast<unsigned long long>(node->calls),
                  node->total_seconds * 1e3, node->self_seconds * 1e3);
    }
  }

  const std::string json = telemetry::telemetry_json();
  const std::string json_path = telemetry::report_path(prefix + ".json");
  const std::string trace_path =
      telemetry::report_path(prefix + ".trace.json");
  bool ok = true;
  for (const auto& [path, content] :
       {std::pair{json_path, json},
        std::pair{trace_path, telemetry::chrome_trace_json()}}) {
    if (telemetry::write_text_file(path, content)) {
      if (!quiet) {
        std::printf("wrote %s (%zu bytes)\n", path.c_str(), content.size());
      }
    } else {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      ok = false;
    }
  }

  if (json_mode) std::printf("%s\n", json.c_str());

  // Smoke-test contract: instrumentation and exporters must produce.
  if (!ok || metric_count < 5 || span_count < 5 || json.size() < 64) {
    std::fprintf(stderr,
                 "telemetry smoke FAILED (ok=%d metrics=%zu spans=%zu "
                 "json_bytes=%zu)\n",
                 ok ? 1 : 0, metric_count, span_count, json.size());
    return 1;
  }
  if (!quiet) std::printf("telemetry smoke OK\n");
  return 0;
}
