// repro_lint: project-invariant static analyzer for this repository.
//
// A self-contained pass (no compiler dependency) that lexes every C++
// source file — stripping comments and string literals so rules match
// code only — and enforces the project invariants that keep the
// reproduction's claims true at build time:
//
//   determinism   all randomness flows through src/common/rng, all
//                 threading through src/common/parallel, all wall-clock
//                 reads through src/common/telemetry;
//   configuration all environment access goes through src/common/env;
//   fidelity      the nprint/pcap bit paths use checked conversions, not
//                 C casts;
//   observability library code logs through common/logging, and every
//                 telemetry span/metric name is lowercase dotted.
//
// Usage:
//   repro_lint [--root <dir>] [--format-check] [--list-rules] <paths...>
//
// Paths are files or directories (recursed; *.cpp *.cc *.cxx *.hpp *.h
// *.hh). Explicitly named files are always linted regardless of
// extension, which is how the fixture tests feed it *.fixture files.
//
// Suppressions: `// repro-lint: allow(RL006) -- <reason>` on the
// offending line, or alone on the line above. The reason is mandatory;
// an allow() without one is itself a finding (RL010).
//
// Exit codes: 0 clean, 1 findings, 2 usage/IO error.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Lexed view of one source file.

struct SourceFile {
  std::string rel_path;               // repo-relative, forward slashes
  std::vector<std::string> raw;       // original lines (no trailing \n)
  std::vector<std::string> code;      // comments/string contents blanked
  std::vector<std::string> comments;  // per-line comment text
  bool ends_with_newline = true;
};

/// Strips comments and string/char literal contents, preserving line
/// structure and column positions (stripped spans become spaces; the
/// quote characters themselves are kept). Comment text is collected per
/// line for the suppression scanner.
SourceFile lex_file(std::string rel_path, const std::string& content) {
  SourceFile out;
  out.rel_path = std::move(rel_path);
  out.ends_with_newline = !content.empty() && content.back() == '\n';

  enum class State { kCode, kLineComment, kBlockComment, kString, kChar,
                     kRawString };
  State state = State::kCode;
  std::string raw_line, code_line, comment_line;
  std::string raw_delim;  // raw-string closing delimiter: )delim"
  bool escaped = false;

  auto flush_line = [&] {
    out.raw.push_back(raw_line);
    out.code.push_back(code_line);
    out.comments.push_back(comment_line);
    raw_line.clear();
    code_line.clear();
    comment_line.clear();
  };

  for (std::size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    if (c == '\n') {
      if (state == State::kLineComment) state = State::kCode;
      // Unterminated ordinary string/char at end of line: reset (line
      // splices are not worth modeling here).
      if (state == State::kString || state == State::kChar) {
        state = State::kCode;
      }
      flush_line();
      escaped = false;
      continue;
    }
    if (c != '\r') raw_line.push_back(c);
    const char next = i + 1 < content.size() ? content[i + 1] : '\0';

    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          code_line += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          code_line += "  ";
          ++i;
        } else if (c == '"') {
          // Raw string? The opener is R" possibly behind an encoding
          // prefix (u8R", LR", ...).
          const bool raw_string =
              !raw_line.empty() && raw_line.size() >= 2 &&
              raw_line[raw_line.size() - 2] == 'R' &&
              (raw_line.size() == 2 ||
               !(std::isalnum(static_cast<unsigned char>(
                     raw_line[raw_line.size() - 3])) ||
                 raw_line[raw_line.size() - 3] == '_'));
          if (raw_string) {
            state = State::kRawString;
            raw_delim = ")";
            for (std::size_t j = i + 1;
                 j < content.size() && content[j] != '('; ++j) {
              raw_delim += content[j];
            }
            raw_delim += '"';
          } else {
            state = State::kString;
          }
          code_line.push_back('"');
          escaped = false;
        } else if (c == '\'') {
          state = State::kChar;
          code_line.push_back('\'');
          escaped = false;
        } else {
          code_line.push_back(c);
        }
        break;
      case State::kLineComment:
        if (c != '\r') comment_line.push_back(c);
        code_line.push_back(' ');
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          code_line += "  ";
          ++i;
        } else {
          comment_line.push_back(c);
          code_line.push_back(' ');
        }
        break;
      case State::kString:
        if (escaped) {
          escaped = false;
          code_line.push_back(' ');
        } else if (c == '\\') {
          escaped = true;
          code_line.push_back(' ');
        } else if (c == '"') {
          state = State::kCode;
          code_line.push_back('"');
        } else {
          code_line.push_back(' ');
        }
        break;
      case State::kChar:
        if (escaped) {
          escaped = false;
          code_line.push_back(' ');
        } else if (c == '\\') {
          escaped = true;
          code_line.push_back(' ');
        } else if (c == '\'') {
          state = State::kCode;
          code_line.push_back('\'');
        } else {
          code_line.push_back(' ');
        }
        break;
      case State::kRawString: {
        code_line.push_back(' ');
        // Close when the tail of what we've consumed equals )delim".
        if (c == '"' && raw_line.size() >= raw_delim.size() &&
            raw_line.compare(raw_line.size() - raw_delim.size(),
                             raw_delim.size(), raw_delim) == 0) {
          state = State::kCode;
          code_line.back() = '"';
        }
        break;
      }
    }
  }
  if (!raw_line.empty() || out.raw.empty()) flush_line();
  return out;
}

// ---------------------------------------------------------------------------
// Rule table.

struct Rule {
  const char* id;
  const char* name;
  std::vector<std::string> include;  // path prefixes; empty = everywhere
  std::vector<std::string> allow;    // exempt path prefixes
  const char* pattern_text;          // for --list-rules
  std::regex pattern;                // matched against stripped code
  const char* message;
  const char* rationale;
};

std::vector<Rule> build_rules() {
  const auto re = [](const char* p) {
    return std::regex(p, std::regex::ECMAScript | std::regex::optimize);
  };
  static constexpr const char* kRngPattern =
      R"(\b(std::)?(mt19937(_64)?|minstd_rand0?|ranlux\w+|random_device)\b)"
      R"(|\b(rand|srand|rand_r|drand48)\s*\()";
  static constexpr const char* kCastPattern =
      R"(\(\s*(float|double|(unsigned\s+)?(char|short|int|long))"
      R"(|(std::)?u?int(8|16|32|64)_t|(std::)?(size_t|ptrdiff_t))\s*\))"
      R"(\s*[\w(~!-])";
  static constexpr const char* kClockPattern =
      R"(\b(steady_clock|system_clock|high_resolution_clock)\b)"
      R"(|\b(std::)?(time|clock)\s*\(|\b(gettimeofday|clock_gettime)\s*\()";
  // Matches the system headers, not bare syscall names: identifiers
  // like accept()/bind() are ordinary C++ (src/replay's conntrack has
  // an accept()), but no translation unit can reach the socket/poll
  // syscalls without including one of these.
  static constexpr const char* kSocketPattern =
      R"(#\s*include\s*<(sys/socket\.h|sys/epoll\.h|(sys/)?poll\.h)"
      R"(|netinet/[a-z0-9_]+\.h|arpa/inet\.h)>)";
  std::vector<Rule> rules;
  rules.push_back(Rule{
      "RL001", "raw-rng", {},
      {"src/common/rng."},
      kRngPattern,
      re(kRngPattern),
      "raw RNG construction; all randomness must flow through repro::Rng "
      "(src/common/rng) so streams fork deterministically",
      "an untracked RNG breaks bit-exact reproducibility across runs and "
      "lane counts"});
  rules.push_back(Rule{
      "RL002", "raw-thread", {},
      {"src/common/parallel/", "src/serve/worker."},
      R"(\bstd::(thread|jthread|async)\b)",
      re(R"(\bstd::(thread|jthread|async)\b)"),
      "raw thread creation; use parallel::parallel_for / the shared pool "
      "(src/common/parallel) which chunks deterministically",
      "ad-hoc threads bypass the REPRO_THREADS lane model and make results "
      "depend on scheduling"});
  rules.push_back(Rule{
      "RL003", "raw-getenv", {},
      {"src/common/env.cpp"},
      R"(\b(std::)?getenv\s*\()",
      re(R"(\b(std::)?getenv\s*\()"),
      "raw getenv; read configuration through repro::env_size/env_double/"
      "env_string (src/common/env) which validate and fall back",
      "unvalidated environment reads turn typos into silent UB or throws"});
  rules.push_back(Rule{
      "RL004", "stdio-logging", {"src/"},
      {"src/common/logging."},
      R"(\b(printf|fprintf|puts|fputs|fwrite)\s*\(|\bstd::(cout|cerr|clog)\b)",
      re(R"(\b(printf|fprintf|puts|fputs|fwrite)\s*\(|\bstd::(cout|cerr|clog)\b)"),
      "direct stdio in library code; log through REPRO_LOG_* "
      "(common/logging) — benches/tools/tests/examples are exempt",
      "embedding applications must be able to silence or redirect library "
      "output"});
  rules.push_back(Rule{
      "RL005", "numeric-c-cast",
      {"src/nprint/", "src/net/pcap."},
      {},
      kCastPattern,
      re(kCastPattern),
      "C-style numeric cast in a bit-codec path; use static_cast or the "
      "checked repro::narrow<T>() (common/bytes.hpp)",
      "silent narrowing here corrupts the {1,0,-1} nprint bit semantics "
      "the paper's Figure 2 depends on"});
  rules.push_back(Rule{
      "RL006", "wall-clock", {"src/"},
      {"src/common/telemetry/", "src/serve/clock."},
      kClockPattern,
      re(kClockPattern),
      "wall-clock read outside telemetry; generated artifacts must not "
      "depend on real time",
      "time-dependent values in the data path make two identical runs "
      "produce different bits"});
  rules.push_back(Rule{
      "RL007", "telemetry-name", {}, {},
      "(name grammar check on REPRO_SPAN / telemetry::count|gauge_set|"
      "observe literals)",
      re(R"(\bREPRO_SPAN\s*\(|\btelemetry::(count|gauge_set|observe)\s*\()"),
      "telemetry name must be lowercase dotted `component.detail` "
      "([a-z0-9_]+(.[a-z0-9_]+)+)",
      "exporters aggregate by prefix; one off-grammar name splinters the "
      "metric tree"});
  rules.push_back(Rule{
      "RL008", "pragma-once", {}, {},
      "(header files must contain #pragma once)",
      re(R"(^\s*#\s*pragma\s+once\b)"),
      "header is missing #pragma once",
      "double inclusion produces ODR violations that surface as baffling "
      "link errors"});
  rules.push_back(Rule{
      "RL009", "using-namespace-std", {}, {},
      R"(\busing\s+namespace\s+std\s*;)",
      re(R"(\busing\s+namespace\s+std\s*;)"),
      "`using namespace std` pollutes every includer's lookup",
      "unqualified std names shadow project helpers (min/max/size) and "
      "break builds at a distance"});
  rules.push_back(Rule{
      "RL010", "allow-without-reason", {}, {},
      "(suppression comments must carry `-- <reason>`)",
      re(""),  // driven by the comment scanner, not a code pattern
      "repro-lint: allow(...) without a `-- <reason>` tail",
      "a suppression is a waiver of a project invariant; the reviewer "
      "needs the justification inline"});
  rules.push_back(Rule{
      "RL011", "serve-telemetry-prefix", {"src/serve/"}, {},
      "(telemetry literals registered from src/serve/ must start with "
      "`serve.`)",
      re(R"(\bREPRO_SPAN\s*\(|\btelemetry::(count|gauge_set|observe)\s*\(|)"
         R"(\bSpanTimer\b|\.\s*(counter|gauge|histogram)\s*\()"),
      "telemetry name registered from src/serve/ must use the `serve.` "
      "prefix",
      "the health exporter and dashboards aggregate the serving metric "
      "tree by prefix; a stray name drops out of every serve view"});
  rules.push_back(Rule{
      "RL012", "raw-socket", {"src/"},
      {"src/serve/net/"},
      kSocketPattern,
      re(kSocketPattern),
      "socket/poll system header outside src/serve/net/; all transport "
      "I/O goes through the socket front-end (SocketServer / "
      "BlockingClient)",
      "transport code outside the front-end bypasses the framed "
      "protocol, connection accounting, and conn-scoped flight events "
      "the serving contract guarantees"});
  return rules;
}

// Format-mode rules (checked on raw lines; IDs share the table and docs).
struct FormatRuleDoc {
  const char* id;
  const char* name;
  const char* message;
};
constexpr FormatRuleDoc kFormatRules[] = {
    {"RF001", "trailing-whitespace", "trailing whitespace"},
    {"RF002", "tab-indent", "tab character (indent with spaces)"},
    {"RF003", "crlf", "CRLF line ending (use LF)"},
    {"RF004", "no-final-newline", "file does not end with a newline"},
    {"RF005", "line-too-long", "line exceeds 100 columns"},
};
constexpr std::size_t kMaxLineLength = 100;

// ---------------------------------------------------------------------------
// Findings and suppressions.

struct Finding {
  std::string file;
  std::size_t line = 0;  // 1-based
  std::string rule_id;
  std::string rule_name;
  std::string message;
};

/// Parsed `repro-lint: allow(...)` directives: line -> rule ids allowed
/// there. A directive on a comment-only line covers the next line too.
struct Suppressions {
  std::map<std::size_t, std::set<std::string>> by_line;  // 1-based
  std::vector<std::size_t> missing_reason;               // RL010 sites

  bool allows(std::size_t line, const std::string& rule_id) const {
    const auto it = by_line.find(line);
    return it != by_line.end() && it->second.count(rule_id) > 0;
  }
};

Suppressions scan_suppressions(const SourceFile& file) {
  Suppressions out;
  static const std::regex directive(
      R"(repro-lint:\s*allow\(\s*([A-Za-z0-9_,\s]+)\s*\))",
      std::regex::ECMAScript);
  static const std::regex reason_tail(
      R"(repro-lint:\s*allow\([^)]*\)\s*--\s*\S)", std::regex::ECMAScript);
  for (std::size_t i = 0; i < file.comments.size(); ++i) {
    const std::string& comment = file.comments[i];
    if (comment.find("repro-lint:") == std::string::npos) continue;
    std::smatch m;
    if (!std::regex_search(comment, m, directive)) continue;
    const std::size_t line = i + 1;
    if (!std::regex_search(comment, reason_tail)) {
      out.missing_reason.push_back(line);
      continue;  // an unjustified allow() suppresses nothing
    }
    std::set<std::string> ids;
    std::stringstream list(m[1].str());
    std::string id;
    while (std::getline(list, id, ',')) {
      id.erase(std::remove_if(id.begin(), id.end(),
                              [](unsigned char c) { return std::isspace(c); }),
               id.end());
      if (!id.empty()) ids.insert(id);
    }
    out.by_line[line].insert(ids.begin(), ids.end());
    // Comment-only line: the directive governs the following line.
    const std::string& code = file.code[i];
    const bool code_empty =
        std::all_of(code.begin(), code.end(),
                    [](unsigned char c) { return std::isspace(c) || c == 0; });
    if (code_empty) out.by_line[line + 1].insert(ids.begin(), ids.end());
  }
  return out;
}

// ---------------------------------------------------------------------------
// Rule application.

bool path_has_prefix(const std::string& path,
                     const std::vector<std::string>& prefixes) {
  return std::any_of(prefixes.begin(), prefixes.end(),
                     [&](const std::string& p) {
                       return path.compare(0, p.size(), p) == 0;
                     });
}

bool rule_applies_to(const Rule& rule, const std::string& path) {
  if (!rule.include.empty() && !path_has_prefix(path, rule.include)) {
    return false;
  }
  return !path_has_prefix(path, rule.allow);
}

bool is_header(const std::string& path) {
  return path.ends_with(".hpp") || path.ends_with(".h") ||
         path.ends_with(".hh") || path.ends_with(".hpp.fixture") ||
         path.ends_with(".h.fixture");
}

/// Extracts the first "..." literal in `raw` at or after `from`.
std::optional<std::string> first_string_literal(const std::string& raw,
                                                std::size_t from) {
  const std::size_t open = raw.find('"', from);
  if (open == std::string::npos) return std::nullopt;
  std::string value;
  for (std::size_t i = open + 1; i < raw.size(); ++i) {
    if (raw[i] == '\\') {
      ++i;
      if (i < raw.size()) value.push_back(raw[i]);
    } else if (raw[i] == '"') {
      return value;
    } else {
      value.push_back(raw[i]);
    }
  }
  return std::nullopt;
}

bool valid_telemetry_name(const std::string& name) {
  static const std::regex grammar(R"(^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$)");
  return std::regex_match(name, grammar);
}

void lint_file(const SourceFile& file, const std::vector<Rule>& rules,
               std::vector<Finding>& findings) {
  const Suppressions sup = scan_suppressions(file);
  const Rule* rl010 = nullptr;
  for (const Rule& rule : rules) {
    if (std::string_view(rule.id) == "RL010") rl010 = &rule;
  }
  for (const std::size_t line : sup.missing_reason) {
    if (rl010 != nullptr && rule_applies_to(*rl010, file.rel_path)) {
      findings.push_back(Finding{file.rel_path, line, rl010->id, rl010->name,
                                 rl010->message});
    }
  }

  for (const Rule& rule : rules) {
    const std::string_view id(rule.id);
    if (id == "RL010") continue;  // handled above
    if (!rule_applies_to(rule, file.rel_path)) continue;

    if (id == "RL008") {
      if (!is_header(file.rel_path)) continue;
      bool found = false;
      for (const std::string& code : file.code) {
        if (std::regex_search(code, rule.pattern)) {
          found = true;
          break;
        }
      }
      if (!found && !sup.allows(1, rule.id)) {
        findings.push_back(
            Finding{file.rel_path, 1, rule.id, rule.name, rule.message});
      }
      continue;
    }

    for (std::size_t i = 0; i < file.code.size(); ++i) {
      const std::string& code = file.code[i];
      if (code.empty()) continue;
      if (id == "RL007") {
        // Validate the literal argument of each telemetry call site.
        auto begin = std::sregex_iterator(code.begin(), code.end(),
                                          rule.pattern);
        for (auto it = begin; it != std::sregex_iterator(); ++it) {
          const auto call_end =
              static_cast<std::size_t>(it->position() + it->length());
          const std::optional<std::string> name =
              first_string_literal(file.raw[i], call_end);
          // Name built at runtime or on a later line: out of scope for a
          // lexical pass.
          if (!name.has_value()) continue;
          if (!valid_telemetry_name(*name) && !sup.allows(i + 1, rule.id)) {
            findings.push_back(Finding{file.rel_path, i + 1, rule.id,
                                       rule.name,
                                       std::string(rule.message) + " (got \"" +
                                           *name + "\")"});
          }
        }
        continue;
      }
      if (id == "RL011") {
        // Same literal-extraction approach as RL007: only names the
        // lexer can see are checked; runtime-built names are out of
        // scope for a lexical pass.
        auto begin = std::sregex_iterator(code.begin(), code.end(),
                                          rule.pattern);
        for (auto it = begin; it != std::sregex_iterator(); ++it) {
          const auto call_end =
              static_cast<std::size_t>(it->position() + it->length());
          const std::optional<std::string> name =
              first_string_literal(file.raw[i], call_end);
          if (!name.has_value()) continue;
          if (name->rfind("serve.", 0) != 0 && !sup.allows(i + 1, rule.id)) {
            findings.push_back(Finding{file.rel_path, i + 1, rule.id,
                                       rule.name,
                                       std::string(rule.message) + " (got \"" +
                                           *name + "\")"});
          }
        }
        continue;
      }
      if (std::regex_search(code, rule.pattern) &&
          !sup.allows(i + 1, rule.id)) {
        findings.push_back(
            Finding{file.rel_path, i + 1, rule.id, rule.name, rule.message});
      }
    }
  }
}

void format_check_file(const SourceFile& file, std::vector<Finding>& findings) {
  const Suppressions sup = scan_suppressions(file);
  for (std::size_t i = 0; i < file.raw.size(); ++i) {
    const std::string& line = file.raw[i];
    if (!line.empty() &&
        (line.back() == ' ' || line.back() == '\t') &&
        !sup.allows(i + 1, "RF001")) {
      findings.push_back(Finding{file.rel_path, i + 1, "RF001",
                                 "trailing-whitespace",
                                 kFormatRules[0].message});
    }
    if (line.find('\t') != std::string::npos && !sup.allows(i + 1, "RF002")) {
      findings.push_back(Finding{file.rel_path, i + 1, "RF002", "tab-indent",
                                 kFormatRules[1].message});
    }
    if (line.size() > kMaxLineLength && !sup.allows(i + 1, "RF005")) {
      findings.push_back(Finding{file.rel_path, i + 1, "RF005",
                                 "line-too-long", kFormatRules[4].message});
    }
  }
  if (!file.ends_with_newline) {
    findings.push_back(Finding{file.rel_path, file.raw.size(), "RF004",
                               "no-final-newline", kFormatRules[3].message});
  }
}

// CRLF detection needs the raw bytes (lex_file strips \r).
void crlf_check(const std::string& content, const std::string& rel_path,
                std::vector<Finding>& findings) {
  std::size_t line = 1;
  for (std::size_t i = 0; i < content.size(); ++i) {
    if (content[i] == '\r' && i + 1 < content.size() &&
        content[i + 1] == '\n') {
      findings.push_back(Finding{rel_path, line, "RF003", "crlf",
                                 kFormatRules[2].message});
      return;  // one finding per file is enough
    }
    if (content[i] == '\n') ++line;
  }
}

// ---------------------------------------------------------------------------
// Driver.

bool has_source_extension(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".hpp" ||
         ext == ".h" || ext == ".hh";
}

std::vector<fs::path> collect_files(const std::vector<std::string>& inputs,
                                    const fs::path& root, bool& io_error) {
  std::vector<fs::path> files;
  for (const std::string& input : inputs) {
    fs::path p(input);
    if (p.is_relative()) p = root / p;
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (fs::recursive_directory_iterator it(p, ec), end; it != end;
           it.increment(ec)) {
        if (ec) break;
        if (it->is_regular_file() && has_source_extension(it->path())) {
          files.push_back(it->path());
        }
      }
    } else if (fs::is_regular_file(p, ec)) {
      files.push_back(p);  // explicit files are always linted
    } else {
      std::cerr << "repro_lint: no such file or directory: " << input << "\n";
      io_error = true;
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

std::string relative_to(const fs::path& file, const fs::path& root) {
  std::error_code ec;
  const fs::path rel = fs::relative(file, root, ec);
  if (ec || rel.empty() || *rel.begin() == "..") {
    return file.generic_string();
  }
  return rel.generic_string();
}

void print_rules(const std::vector<Rule>& rules) {
  std::cout << "repro_lint rule table\n\n";
  for (const Rule& rule : rules) {
    std::cout << rule.id << "  " << rule.name << "\n    scope: ";
    if (rule.include.empty()) {
      std::cout << "all sources";
    } else {
      for (std::size_t i = 0; i < rule.include.size(); ++i) {
        std::cout << (i ? ", " : "") << rule.include[i];
      }
    }
    if (!rule.allow.empty()) {
      std::cout << "  (exempt: ";
      for (std::size_t i = 0; i < rule.allow.size(); ++i) {
        std::cout << (i ? ", " : "") << rule.allow[i];
      }
      std::cout << ")";
    }
    std::cout << "\n    why:   " << rule.rationale << "\n";
  }
  std::cout << "\nformat rules (--format-check)\n\n";
  for (const FormatRuleDoc& rule : kFormatRules) {
    std::cout << rule.id << "  " << rule.name << ": " << rule.message << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  bool format_mode = false;
  std::vector<std::string> inputs;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == "--root") {
      if (i + 1 >= argc) {
        std::cerr << "repro_lint: --root needs a directory\n";
        return 2;
      }
      root = fs::path(argv[++i]);
    } else if (arg == "--format-check") {
      format_mode = true;
    } else if (arg == "--list-rules") {
      print_rules(build_rules());
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: repro_lint [--root <dir>] [--format-check] "
                   "[--list-rules] <paths...>\n";
      return 0;
    } else if (!arg.empty() && arg.front() == '-') {
      std::cerr << "repro_lint: unknown option " << arg << "\n";
      return 2;
    } else {
      inputs.emplace_back(arg);
    }
  }
  if (inputs.empty()) {
    std::cerr << "repro_lint: no input paths (try --help)\n";
    return 2;
  }

  const std::vector<Rule> rules = build_rules();
  bool io_error = false;
  const std::vector<fs::path> files = collect_files(inputs, root, io_error);
  std::vector<Finding> findings;

  for (const fs::path& path : files) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::cerr << "repro_lint: cannot read " << path << "\n";
      io_error = true;
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string content = buffer.str();
    const std::string rel = relative_to(path, root);
    const SourceFile file = lex_file(rel, content);
    if (format_mode) {
      format_check_file(file, findings);
      crlf_check(content, rel, findings);
    } else {
      lint_file(file, rules, findings);
    }
  }

  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.file != b.file) return a.file < b.file;
                     return a.line < b.line;
                   });
  for (const Finding& f : findings) {
    std::cout << f.file << ":" << f.line << ": error: [" << f.rule_id << "/"
              << f.rule_name << "] " << f.message << "\n";
  }
  std::cout << "repro_lint: " << files.size() << " files scanned, "
            << findings.size()
            << (format_mode ? " format findings\n" : " findings\n");
  if (io_error) return 2;
  return findings.empty() ? 0 : 1;
}
