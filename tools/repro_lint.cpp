// repro_lint — driver for the multi-pass analysis engine in tools/lint/.
//
// The engine (tools/lint/engine.{hpp,cpp}) owns lexing, suppression
// filtering, the parallel per-file sweep, and deterministic merging;
// the rules live in tools/lint/passes/. This file only parses flags,
// assembles the pass list, and renders results.
//
// Modes:
//   (default)        RL001-RL023 rule passes (tokens, determinism,
//                    architecture against tools/lint/layers.txt)
//   --format-check   RF001-RF005 whitespace/line hygiene only
//   --json           machine-readable findings on stdout (byte-identical
//                    at any REPRO_THREADS — no timings in the stream)
//   --timings-json F per-pass wall times, written to F for the bench
//   --graph-dot F|-  module-level include graph as Graphviz DOT
//   --layers F       layering manifest (default: <root>/tools/lint/layers.txt)
//   --include-fixtures  also collect *.cpp.fixture etc. from directories
//
// Exit codes: 0 clean, 1 findings, 2 usage/IO error.

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "lint/engine.hpp"
#include "lint/passes.hpp"

namespace {

namespace fs = std::filesystem;
using namespace repro::lint;

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void print_findings_json(std::ostream& out, const EngineResult& result,
                         bool format_mode) {
  out << "{\n  \"mode\": \"" << (format_mode ? "format" : "rules")
      << "\",\n  \"files_scanned\": " << result.files_scanned
      << ",\n  \"findings\": [";
  for (std::size_t i = 0; i < result.findings.size(); ++i) {
    const Finding& f = result.findings[i];
    out << (i ? "," : "") << "\n    {\"file\": \"" << json_escape(f.file)
        << "\", \"line\": " << f.line << ", \"rule\": \"" << f.rule_id
        << "\", \"name\": \"" << f.rule_name << "\", \"message\": \""
        << json_escape(f.message) << "\"}";
  }
  out << (result.findings.empty() ? "" : "\n  ") << "]\n}\n";
}

void print_timings_json(std::ostream& out, const EngineResult& result) {
  out << "{\n  \"passes\": [";
  for (std::size_t i = 0; i < result.timings.size(); ++i) {
    const PassTiming& t = result.timings[i];
    out << (i ? "," : "") << "\n    {\"pass\": \"" << t.pass
        << "\", \"seconds\": " << t.seconds
        << ", \"findings\": " << t.findings << "}";
  }
  out << (result.timings.empty() ? "" : "\n  ") << "]\n}\n";
}

void print_rules(const Engine& engine, const Pass& format_pass) {
  std::cout << "repro_lint rule table\n\n";
  for (const auto& pass : engine.passes()) pass->describe(std::cout);
  std::cout << "\nformat rules (--format-check)\n\n";
  format_pass.describe(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  bool format_mode = false;
  bool json_mode = false;
  bool list_rules = false;
  bool include_fixtures = false;
  std::string timings_path;
  std::string graph_dot;   // output path, "-" = stdout
  std::string layers_path; // empty = default manifest
  std::vector<std::string> inputs;

  const auto need_value = [&](int& i, const std::string_view arg) {
    if (i + 1 >= argc) {
      std::cerr << "repro_lint: " << arg << " needs a value\n";
      std::exit(2);
    }
    return std::string(argv[++i]);
  };
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == "--root") {
      root = fs::path(need_value(i, arg));
    } else if (arg == "--format-check") {
      format_mode = true;
    } else if (arg == "--json") {
      json_mode = true;
    } else if (arg == "--timings-json") {
      timings_path = need_value(i, arg);
    } else if (arg == "--graph-dot") {
      graph_dot = need_value(i, arg);
    } else if (arg == "--layers") {
      layers_path = need_value(i, arg);
    } else if (arg == "--include-fixtures") {
      include_fixtures = true;
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout
          << "usage: repro_lint [--root <dir>] [--format-check] [--json]\n"
             "                  [--timings-json <file>] [--graph-dot "
             "<file|->]\n"
             "                  [--layers <manifest>] [--include-fixtures]\n"
             "                  [--list-rules] <paths...>\n";
      return 0;
    } else if (!arg.empty() && arg.front() == '-') {
      std::cerr << "repro_lint: unknown option " << arg << "\n";
      return 2;
    } else {
      inputs.emplace_back(arg);
    }
  }

  // Layering manifest: explicit --layers must parse; the default one is
  // optional so the tool still works on a bare tree.
  LayerManifest manifest;
  try {
    if (!layers_path.empty()) {
      fs::path p(layers_path);
      if (p.is_relative()) p = root / p;
      manifest = parse_layer_manifest(p);
    } else {
      const fs::path fallback = root / "tools" / "lint" / "layers.txt";
      std::error_code ec;
      if (fs::is_regular_file(fallback, ec)) {
        manifest = parse_layer_manifest(fallback);
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "repro_lint: " << e.what() << "\n";
    return 2;
  }

  Engine engine;
  if (format_mode) {
    engine.add_pass(make_format_pass());
  } else {
    engine.add_pass(make_token_pass());
    engine.add_pass(make_determinism_pass());
    engine.add_pass(make_architecture_pass(manifest));
  }

  if (list_rules) {
    if (format_mode) {
      // Keep --list-rules output identical in both modes.
      Engine rules;
      rules.add_pass(make_token_pass());
      rules.add_pass(make_determinism_pass());
      rules.add_pass(make_architecture_pass(manifest));
      print_rules(rules, *make_format_pass());
    } else {
      print_rules(engine, *make_format_pass());
    }
    return 0;
  }
  if (inputs.empty()) {
    std::cerr << "repro_lint: no input paths (try --help)\n";
    return 2;
  }

  bool io_error = false;
  const std::vector<fs::path> files =
      collect_files(inputs, root, include_fixtures, io_error);
  const Corpus corpus = load_corpus(files, root, io_error);
  const EngineResult result = engine.run(corpus, /*emit_rl010=*/!format_mode);

  if (!timings_path.empty()) {
    std::ofstream out(timings_path, std::ios::binary);
    if (!out) {
      std::cerr << "repro_lint: cannot write " << timings_path << "\n";
      return 2;
    }
    print_timings_json(out, result);
  }

  if (!graph_dot.empty()) {
    const std::string dot = include_graph_dot(corpus, manifest);
    if (graph_dot == "-") {
      // DOT owns stdout; findings still drive the exit code.
      std::cout << dot;
      if (io_error) return 2;
      return result.findings.empty() ? 0 : 1;
    }
    std::ofstream out(graph_dot, std::ios::binary);
    if (!out) {
      std::cerr << "repro_lint: cannot write " << graph_dot << "\n";
      return 2;
    }
    out << dot;
  }

  if (json_mode) {
    print_findings_json(std::cout, result, format_mode);
  } else {
    for (const Finding& f : result.findings) {
      std::cout << f.file << ":" << f.line << ": error: [" << f.rule_id
                << "/" << f.rule_name << "] " << f.message << "\n";
    }
    std::cout << "repro_lint: " << result.files_scanned
              << " files scanned, " << result.findings.size()
              << (format_mode ? " format findings\n" : " findings\n");
  }
  if (io_error) return 2;
  return result.findings.empty() ? 0 : 1;
}
