// Multi-pass analysis engine behind tools/repro_lint.
//
// The engine owns everything rule-independent: lexing every source file
// into a comment/string-stripped view, scanning suppression directives,
// collecting inputs, scheduling the per-file passes over
// common/parallel::parallel_for, filtering waived findings, and merging
// results in deterministic path order so the output is byte-identical
// at any REPRO_THREADS setting.
//
// Rules live in passes (tools/lint/passes/*.cpp). A pass implements one
// or both hooks:
//   lint_file(file, out)    called once per file, possibly concurrently
//                           with other files — it must only read `file`
//                           and append to `out`;
//   lint_corpus(corpus, out) called once, serially, after every
//                           per-file sweep — whole-repo analyses
//                           (include graph, layering) live here.
//
// Suppressions are engine-level: passes report every site and the
// engine drops findings covered by a justified
// `// repro-lint: allow(RLxxx) -- reason` on (or above) the line.
// RL010 (allow without a reason) is emitted by the engine itself.
#pragma once

#include <cstddef>
#include <filesystem>
#include <map>
#include <memory>
#include <optional>
#include <ostream>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace repro::lint {

// ---------------------------------------------------------------------------
// Lexed view of one source file.

/// Parsed `repro-lint: allow(...)` directives: line -> rule ids allowed
/// there. A directive on a comment-only line covers the next line too.
struct Suppressions {
  std::map<std::size_t, std::set<std::string>> by_line;  // 1-based
  std::vector<std::size_t> missing_reason;               // RL010 sites

  bool allows(std::size_t line, const std::string& rule_id) const {
    const auto it = by_line.find(line);
    return it != by_line.end() && it->second.count(rule_id) > 0;
  }
};

struct SourceFile {
  std::string rel_path;    // repo-relative, forward slashes
  std::string canon_path;  // rel_path with a trailing ".fixture" dropped
  std::vector<std::string> raw;       // original lines (no trailing \n)
  std::vector<std::string> code;      // comments/string contents blanked
  std::vector<std::string> comments;  // per-line comment text
  bool ends_with_newline = true;
  bool has_crlf = false;
  std::size_t first_crlf_line = 0;  // 1-based, valid when has_crlf
  Suppressions suppressions;
};

/// Strips comments and string/char literal contents, preserving line
/// structure and column positions (stripped spans become spaces; the
/// quote characters themselves are kept). Also scans suppressions and
/// CRLF state, so a SourceFile is self-contained for every pass.
SourceFile lex_file(std::string rel_path, const std::string& content);

// ---------------------------------------------------------------------------
// Findings.

struct Finding {
  std::string file;
  std::size_t line = 0;  // 1-based
  std::string rule_id;
  std::string rule_name;
  std::string message;
};

// ---------------------------------------------------------------------------
// Corpus: every file of one engine run, sorted by rel_path.

struct Corpus {
  std::filesystem::path root;
  std::vector<SourceFile> files;
  // canon_path -> index into files, for include-graph resolution.
  std::map<std::string, std::size_t> by_canon;

  const SourceFile* find_canon(const std::string& canon) const {
    const auto it = by_canon.find(canon);
    return it == by_canon.end() ? nullptr : &files[it->second];
  }
};

// ---------------------------------------------------------------------------
// Pass interface.

class Pass {
 public:
  virtual ~Pass() = default;
  virtual const char* name() const = 0;
  /// Per-file hook; may run concurrently across files.
  virtual void lint_file(const SourceFile& file,
                         std::vector<Finding>& out) const;
  /// Whole-corpus hook; runs once, serially, after the per-file sweep.
  virtual void lint_corpus(const Corpus& corpus,
                           std::vector<Finding>& out) const;
  /// Appends this pass's rule table to a --list-rules dump.
  virtual void describe(std::ostream& out) const;
};

// ---------------------------------------------------------------------------
// Engine.

struct PassTiming {
  std::string pass;
  double seconds = 0.0;
  std::size_t findings = 0;  // after suppression filtering
};

struct EngineResult {
  std::vector<Finding> findings;  // filtered, sorted (file, line, rule)
  std::vector<PassTiming> timings;
  std::size_t files_scanned = 0;
};

class Engine {
 public:
  void add_pass(std::unique_ptr<Pass> pass);
  const std::vector<std::unique_ptr<Pass>>& passes() const { return passes_; }

  /// Runs every registered pass over the corpus. `emit_rl010` is on for
  /// rule mode and off for --format-check (matching the historical
  /// single-pass behavior).
  EngineResult run(const Corpus& corpus, bool emit_rl010) const;

 private:
  std::vector<std::unique_ptr<Pass>> passes_;
};

// ---------------------------------------------------------------------------
// Input collection and corpus loading.

/// Recursively collects *.cpp *.cc *.cxx *.hpp *.h *.hh under directory
/// inputs (plus *.fixture variants when `include_fixtures`); explicitly
/// named files are always taken. Returns a sorted, deduplicated list.
std::vector<std::filesystem::path> collect_files(
    const std::vector<std::string>& inputs, const std::filesystem::path& root,
    bool include_fixtures, bool& io_error);

/// Reads and lexes every file (in parallel, deterministic slot writes).
/// Unreadable files are reported on stderr and set `io_error`.
Corpus load_corpus(const std::vector<std::filesystem::path>& files,
                   const std::filesystem::path& root, bool& io_error);

// ---------------------------------------------------------------------------
// Shared helpers for passes.

bool path_has_prefix(const std::string& path,
                     const std::vector<std::string>& prefixes);
bool is_header(const std::string& path);

/// Extracts the first "..." literal in `raw` at or after `from`.
std::optional<std::string> first_string_literal(const std::string& raw,
                                                std::size_t from);

/// The target of an `#include "..."` directive on a stripped code line,
/// or nullopt. (Quoted includes only; <...> system headers are not
/// project edges.)
std::optional<std::string> quoted_include_target(const std::string& code,
                                                 const std::string& raw);

/// Function-body line spans [begin, end], 1-based inclusive: every
/// brace-balanced block whose opening brace follows a ')' (allowing
/// const/noexcept/override/final/try and trailing-return tokens in
/// between). Lambdas and nested blocks are contained in their parent
/// span; smallest_enclosing() picks the innermost.
struct FunctionSpans {
  struct Span {
    std::size_t begin = 0;
    std::size_t end = 0;
  };
  std::vector<Span> spans;

  const Span* smallest_enclosing(std::size_t line) const;
};
FunctionSpans find_function_spans(const SourceFile& file);

}  // namespace repro::lint
