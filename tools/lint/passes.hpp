// Pass factories and the layering-manifest model for tools/repro_lint.
//
// Three rule passes plus the format pass:
//   tokens        RL001-RL012 — the original per-file lexer rules;
//   determinism   RL013-RL017 — nondeterminism taint (unordered
//                 iteration into sinks, pointer ordering, thread
//                 identity, atomic float accumulation, byte-buffer
//                 reinterpret_cast);
//   architecture  RL020-RL022 — whole-repo include-graph analysis
//                 against the layering manifest (tools/lint/layers.txt);
//   format        RF001-RF005 — whitespace/line hygiene (--format-check).
#pragma once

#include <filesystem>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "lint/engine.hpp"

namespace repro::lint {

std::unique_ptr<Pass> make_token_pass();
std::unique_ptr<Pass> make_format_pass();
std::unique_ptr<Pass> make_determinism_pass();

// ---------------------------------------------------------------------------
// Layering manifest (tools/lint/layers.txt).
//
// Grammar, one directive per line ('#' starts a comment):
//   layer <module> [<module>...]   declares one layer, bottom first; a
//                                  module may include itself and any
//                                  module in a strictly lower layer
//   allow <from> -> <to>           sanctions one same-layer edge
//   confine <target-prefix> <includer-prefix>
//                                  headers whose src/-relative path
//                                  starts with <target-prefix> may only
//                                  be included from files whose
//                                  repo-relative path starts with
//                                  <includer-prefix>

struct LayerManifest {
  std::map<std::string, int> layer_of;  // module -> layer index (bottom = 0)
  std::set<std::pair<std::string, std::string>> allowed;  // same-layer edges
  std::vector<std::pair<std::string, std::string>> confined;
  bool loaded = false;
};

/// Parses the manifest; throws std::runtime_error with a line-numbered
/// message on grammar errors.
LayerManifest parse_layer_manifest(const std::filesystem::path& path);

std::unique_ptr<Pass> make_architecture_pass(LayerManifest manifest);

/// Module-level include graph of the corpus's src/ files as Graphviz
/// DOT, modules grouped by manifest layer, edges labeled with include
/// counts. Deterministic (sorted) output.
std::string include_graph_dot(const Corpus& corpus,
                              const LayerManifest& manifest);

}  // namespace repro::lint
