// The token pass: the original per-file lexer rules RL001-RL012, plus
// the format pass RF001-RF005. Both work on the stripped code view a
// SourceFile carries, so comments and string literals never fire.

#include <ostream>
#include <regex>
#include <string_view>

#include "lint/passes.hpp"

namespace repro::lint {
namespace {

struct Rule {
  const char* id;
  const char* name;
  std::vector<std::string> include;  // path prefixes; empty = everywhere
  std::vector<std::string> allow;    // exempt path prefixes
  const char* pattern_text;          // for --list-rules
  std::regex pattern;                // matched against stripped code
  const char* message;
  const char* rationale;
};

std::vector<Rule> build_rules() {
  const auto re = [](const char* p) {
    return std::regex(p, std::regex::ECMAScript | std::regex::optimize);
  };
  static constexpr const char* kRngPattern =
      R"(\b(std::)?(mt19937(_64)?|minstd_rand0?|ranlux\w+|random_device)\b)"
      R"(|\b(rand|srand|rand_r|drand48)\s*\()";
  static constexpr const char* kCastPattern =
      R"(\(\s*(float|double|(unsigned\s+)?(char|short|int|long))"
      R"(|(std::)?u?int(8|16|32|64)_t|(std::)?(size_t|ptrdiff_t))\s*\))"
      R"(\s*[\w(~!-])";
  static constexpr const char* kClockPattern =
      R"(\b(steady_clock|system_clock|high_resolution_clock)\b)"
      R"(|\b(std::)?(time|clock)\s*\(|\b(gettimeofday|clock_gettime)\s*\()";
  // Matches the system headers, not bare syscall names: identifiers
  // like accept()/bind() are ordinary C++ (src/replay's conntrack has
  // an accept()), but no translation unit can reach the socket/poll
  // syscalls without including one of these.
  static constexpr const char* kSocketPattern =
      R"(#\s*include\s*<(sys/socket\.h|sys/epoll\.h|(sys/)?poll\.h)"
      R"(|netinet/[a-z0-9_]+\.h|arpa/inet\.h)>)";
  // The int8 storage types (std::int8_t / uint8_t / signed char), which
  // in src/nn only the quantized-GEMM kernel file may touch.
  static constexpr const char* kInt8Pattern =
      R"(\b(std::)?u?int8_t\b|\bsigned\s+char\b)";
  std::vector<Rule> rules;
  rules.push_back(Rule{
      "RL001", "raw-rng", {},
      {"src/common/rng."},
      kRngPattern,
      re(kRngPattern),
      "raw RNG construction; all randomness must flow through repro::Rng "
      "(src/common/rng) so streams fork deterministically",
      "an untracked RNG breaks bit-exact reproducibility across runs and "
      "lane counts"});
  rules.push_back(Rule{
      "RL002", "raw-thread", {},
      {"src/common/parallel/", "src/serve/worker."},
      R"(\bstd::(thread|jthread|async)\b)",
      re(R"(\bstd::(thread|jthread|async)\b)"),
      "raw thread creation; use parallel::parallel_for / the shared pool "
      "(src/common/parallel) which chunks deterministically",
      "ad-hoc threads bypass the REPRO_THREADS lane model and make results "
      "depend on scheduling"});
  rules.push_back(Rule{
      "RL003", "raw-getenv", {},
      {"src/common/env.cpp"},
      R"(\b(std::)?getenv\s*\()",
      re(R"(\b(std::)?getenv\s*\()"),
      "raw getenv; read configuration through repro::env_size/env_double/"
      "env_string (src/common/env) which validate and fall back",
      "unvalidated environment reads turn typos into silent UB or throws"});
  rules.push_back(Rule{
      "RL004", "stdio-logging", {"src/"},
      {"src/common/logging."},
      R"(\b(printf|fprintf|puts|fputs|fwrite)\s*\(|\bstd::(cout|cerr|clog)\b)",
      re(R"(\b(printf|fprintf|puts|fputs|fwrite)\s*\(|\bstd::(cout|cerr|clog)\b)"),
      "direct stdio in library code; log through REPRO_LOG_* "
      "(common/logging) — benches/tools/tests/examples are exempt",
      "embedding applications must be able to silence or redirect library "
      "output"});
  rules.push_back(Rule{
      "RL005", "numeric-c-cast",
      {"src/nprint/", "src/net/pcap."},
      {},
      kCastPattern,
      re(kCastPattern),
      "C-style numeric cast in a bit-codec path; use static_cast or the "
      "checked repro::narrow<T>() (common/bytes.hpp)",
      "silent narrowing here corrupts the {1,0,-1} nprint bit semantics "
      "the paper's Figure 2 depends on"});
  rules.push_back(Rule{
      "RL006", "wall-clock", {"src/"},
      {"src/common/telemetry/", "src/serve/clock.",
       "src/replay/emit/pacer."},
      kClockPattern,
      re(kClockPattern),
      "wall-clock read outside telemetry; generated artifacts must not "
      "depend on real time",
      "time-dependent values in the data path make two identical runs "
      "produce different bits"});
  rules.push_back(Rule{
      "RL007", "telemetry-name", {}, {},
      "(name grammar check on REPRO_SPAN / telemetry::count|gauge_set|"
      "observe literals)",
      re(R"(\bREPRO_SPAN\s*\(|\btelemetry::(count|gauge_set|observe)\s*\()"),
      "telemetry name must be lowercase dotted `component.detail` "
      "([a-z0-9_]+(.[a-z0-9_]+)+)",
      "exporters aggregate by prefix; one off-grammar name splinters the "
      "metric tree"});
  rules.push_back(Rule{
      "RL008", "pragma-once", {}, {},
      "(header files must contain #pragma once)",
      re(R"(^\s*#\s*pragma\s+once\b)"),
      "header is missing #pragma once",
      "double inclusion produces ODR violations that surface as baffling "
      "link errors"});
  rules.push_back(Rule{
      "RL009", "using-namespace-std", {}, {},
      R"(\busing\s+namespace\s+std\s*;)",
      re(R"(\busing\s+namespace\s+std\s*;)"),
      "`using namespace std` pollutes every includer's lookup",
      "unqualified std names shadow project helpers (min/max/size) and "
      "break builds at a distance"});
  rules.push_back(Rule{
      "RL011", "serve-telemetry-prefix", {"src/serve/"}, {},
      "(telemetry literals registered from src/serve/ must start with "
      "`serve.`)",
      re(R"(\bREPRO_SPAN\s*\(|\btelemetry::(count|gauge_set|observe)\s*\(|)"
         R"(\bSpanTimer\b|\.\s*(counter|gauge|histogram)\s*\()"),
      "telemetry name registered from src/serve/ must use the `serve.` "
      "prefix",
      "the health exporter and dashboards aggregate the serving metric "
      "tree by prefix; a stray name drops out of every serve view"});
  rules.push_back(Rule{
      "RL012", "raw-socket", {"src/"},
      {"src/serve/net/"},
      kSocketPattern,
      re(kSocketPattern),
      "socket/poll system header outside src/serve/net/; all transport "
      "I/O goes through the socket front-end (SocketServer / "
      "BlockingClient)",
      "transport code outside the front-end bypasses the framed "
      "protocol, connection accounting, and conn-scoped flight events "
      "the serving contract guarantees"});
  rules.push_back(Rule{
      "RL023", "int8-outside-kernels", {"src/nn/"},
      {"src/nn/kernels/"},
      kInt8Pattern,
      re(kInt8Pattern),
      "int8 storage type outside src/nn/kernels/; layers hold a "
      "kernels::QuantizedTensor and route through qgemm_nt/qgemm_nn "
      "instead of touching quantized bytes directly",
      "the quantized fast path is only bit-exact across lane counts "
      "because every int8 round-trip (scale, clamp, widen, dequant) "
      "lives in one audited kernel file; scattered int8 arithmetic "
      "reintroduces per-call-site rounding choices"});
  // RL024 is one rule id with two enforcement angles (matched by rule
  // *name* in the literal-prefix dispatch below): the replay analogue
  // of RL006's clock confinement and RL011's telemetry-prefix contract.
  rules.push_back(Rule{
      "RL024", "replay-wall-clock", {"src/replay/"},
      {"src/replay/emit/pacer."},
      kClockPattern,
      re(kClockPattern),
      "wall-clock read in src/replay/ outside emit/pacer.cpp; replay "
      "code paces through the Pacer interface (replay/emit/pacer.hpp)",
      "emission must be bit-identical under virtual and real pacing; a "
      "stray clock read drags wall time back into the event loop"});
  rules.push_back(Rule{
      "RL024", "replay-telemetry-prefix", {"src/replay/"}, {},
      "(telemetry literals registered from src/replay/ must start with "
      "`replay.`)",
      re(R"(\bREPRO_SPAN\s*\(|\btelemetry::(count|gauge_set|observe)\s*\()"),
      "telemetry name registered from src/replay/ must use the `replay.` "
      "prefix",
      "rate/jitter dashboards aggregate the replay metric tree by "
      "prefix; a stray name drops out of every replay view"});
  return rules;
}

bool rule_applies_to(const Rule& rule, const std::string& path) {
  if (!rule.include.empty() && !path_has_prefix(path, rule.include)) {
    return false;
  }
  return !path_has_prefix(path, rule.allow);
}

bool valid_telemetry_name(const std::string& name) {
  static const std::regex grammar(R"(^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$)");
  return std::regex_match(name, grammar);
}

class TokenPass : public Pass {
 public:
  TokenPass() : rules_(build_rules()) {}

  const char* name() const override { return "tokens"; }

  void lint_file(const SourceFile& file,
                 std::vector<Finding>& out) const override {
    for (const Rule& rule : rules_) {
      const std::string_view id(rule.id);
      if (!rule_applies_to(rule, file.rel_path)) continue;

      if (id == "RL008") {
        if (!is_header(file.rel_path)) continue;
        bool found = false;
        for (const std::string& code : file.code) {
          if (std::regex_search(code, rule.pattern)) {
            found = true;
            break;
          }
        }
        if (!found) {
          out.push_back(
              Finding{file.rel_path, 1, rule.id, rule.name, rule.message});
        }
        continue;
      }

      for (std::size_t i = 0; i < file.code.size(); ++i) {
        const std::string& code = file.code[i];
        if (code.empty()) continue;
        // Prefix rules share an id with sibling rules (RL024 has a
        // clock angle and a telemetry angle), so dispatch on the rule
        // *name*, not just the id.
        const std::string_view rule_name(rule.name);
        const char* required_prefix =
            rule_name == "serve-telemetry-prefix"    ? "serve."
            : rule_name == "replay-telemetry-prefix" ? "replay."
                                                     : nullptr;
        if (id == "RL007" || required_prefix != nullptr) {
          // Validate the literal argument of each telemetry call site;
          // names built at runtime or on a later line are out of scope
          // for a lexical pass.
          auto begin = std::sregex_iterator(code.begin(), code.end(),
                                            rule.pattern);
          for (auto it = begin; it != std::sregex_iterator(); ++it) {
            const auto call_end =
                static_cast<std::size_t>(it->position() + it->length());
            const std::optional<std::string> literal =
                first_string_literal(file.raw[i], call_end);
            if (!literal.has_value()) continue;
            const bool bad =
                required_prefix == nullptr
                    ? !valid_telemetry_name(*literal)
                    : literal->rfind(required_prefix, 0) != 0;
            if (bad) {
              out.push_back(Finding{file.rel_path, i + 1, rule.id, rule.name,
                                    std::string(rule.message) + " (got \"" +
                                        *literal + "\")"});
            }
          }
          continue;
        }
        if (std::regex_search(code, rule.pattern)) {
          out.push_back(
              Finding{file.rel_path, i + 1, rule.id, rule.name, rule.message});
        }
      }
    }
  }

  void describe(std::ostream& out) const override {
    for (const Rule& rule : rules_) {
      out << rule.id << "  " << rule.name << "\n    scope: ";
      if (rule.include.empty()) {
        out << "all sources";
      } else {
        for (std::size_t i = 0; i < rule.include.size(); ++i) {
          out << (i ? ", " : "") << rule.include[i];
        }
      }
      if (!rule.allow.empty()) {
        out << "  (exempt: ";
        for (std::size_t i = 0; i < rule.allow.size(); ++i) {
          out << (i ? ", " : "") << rule.allow[i];
        }
        out << ")";
      }
      out << "\n    why:   " << rule.rationale << "\n";
    }
    out << "RL010  allow-without-reason\n    scope: all sources\n"
        << "    why:   a suppression is a waiver of a project invariant; "
        << "the reviewer needs the justification inline\n";
  }

 private:
  std::vector<Rule> rules_;
};

// ---------------------------------------------------------------------------
// Format pass (--format-check).

struct FormatRuleDoc {
  const char* id;
  const char* name;
  const char* message;
};
constexpr FormatRuleDoc kFormatRules[] = {
    {"RF001", "trailing-whitespace", "trailing whitespace"},
    {"RF002", "tab-indent", "tab character (indent with spaces)"},
    {"RF003", "crlf", "CRLF line ending (use LF)"},
    {"RF004", "no-final-newline", "file does not end with a newline"},
    {"RF005", "line-too-long", "line exceeds 100 columns"},
};
constexpr std::size_t kMaxLineLength = 100;

class FormatPass : public Pass {
 public:
  const char* name() const override { return "format"; }

  void lint_file(const SourceFile& file,
                 std::vector<Finding>& out) const override {
    for (std::size_t i = 0; i < file.raw.size(); ++i) {
      const std::string& line = file.raw[i];
      if (!line.empty() && (line.back() == ' ' || line.back() == '\t')) {
        out.push_back(Finding{file.rel_path, i + 1, "RF001",
                              "trailing-whitespace", kFormatRules[0].message});
      }
      if (line.find('\t') != std::string::npos) {
        out.push_back(Finding{file.rel_path, i + 1, "RF002", "tab-indent",
                              kFormatRules[1].message});
      }
      if (line.size() > kMaxLineLength) {
        out.push_back(Finding{file.rel_path, i + 1, "RF005", "line-too-long",
                              kFormatRules[4].message});
      }
    }
    if (file.has_crlf) {
      // One finding per file is enough.
      out.push_back(Finding{file.rel_path, file.first_crlf_line, "RF003",
                            "crlf", kFormatRules[2].message});
    }
    if (!file.ends_with_newline) {
      out.push_back(Finding{file.rel_path, file.raw.size(), "RF004",
                            "no-final-newline", kFormatRules[3].message});
    }
  }

  void describe(std::ostream& out) const override {
    for (const FormatRuleDoc& rule : kFormatRules) {
      out << rule.id << "  " << rule.name << ": " << rule.message << "\n";
    }
  }
};

}  // namespace

std::unique_ptr<Pass> make_token_pass() {
  return std::make_unique<TokenPass>();
}

std::unique_ptr<Pass> make_format_pass() {
  return std::make_unique<FormatPass>();
}

}  // namespace repro::lint
