// The architecture pass: RL020-RL022. Builds the file-level include
// graph of every src/ file in the corpus and checks it against the
// layering manifest (tools/lint/layers.txt):
//
//   RL020  include cycles (strongly connected components);
//   RL021  layer-order violations — an include that points at a higher
//          layer, an undeclared same-layer edge, an undeclared module,
//          or a confined header included outside its allowed prefix;
//   RL022  self-containment — a .cpp must include its companion header
//          first (proving the header compiles standalone), and every
//          quoted include must resolve to a repo header.
//
// Project includes are repo-root-relative under src/ (the repo
// convention: `#include "common/rng.hpp"` is src/common/rng.hpp). A
// trailing ".fixture" is transparent, so the fixture corpora mirror
// src/ exactly.

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <map>
#include <ostream>
#include <regex>
#include <sstream>
#include <stdexcept>

#include "lint/passes.hpp"

namespace repro::lint {

// ---------------------------------------------------------------------------
// Manifest.

LayerManifest parse_layer_manifest(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot read layering manifest: " +
                             path.generic_string());
  }
  LayerManifest manifest;
  int layer = 0;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream tokens(line);
    std::string word;
    if (!(tokens >> word)) continue;
    const auto fail = [&](const std::string& why) {
      throw std::runtime_error(path.generic_string() + ":" +
                               std::to_string(line_no) + ": " + why);
    };
    if (word == "layer") {
      std::string module;
      bool any = false;
      while (tokens >> module) {
        if (manifest.layer_of.count(module) > 0) {
          fail("module '" + module + "' declared twice");
        }
        manifest.layer_of[module] = layer;
        any = true;
      }
      if (!any) fail("`layer` needs at least one module");
      ++layer;
    } else if (word == "allow") {
      std::string from, arrow, to;
      if (!(tokens >> from >> arrow >> to) || arrow != "->") {
        fail("`allow` grammar is: allow <from> -> <to>");
      }
      manifest.allowed.emplace(from, to);
    } else if (word == "confine") {
      std::string target, includer;
      if (!(tokens >> target >> includer)) {
        fail("`confine` grammar is: confine <target-prefix> "
             "<includer-prefix>");
      }
      manifest.confined.emplace_back(target, includer);
    } else {
      fail("unknown directive '" + word + "'");
    }
  }
  for (const auto& [from, to] : manifest.allowed) {
    if (manifest.layer_of.count(from) == 0 ||
        manifest.layer_of.count(to) == 0) {
      throw std::runtime_error(path.generic_string() + ": allow " + from +
                               " -> " + to + " names an undeclared module");
    }
  }
  manifest.loaded = true;
  return manifest;
}

namespace {

constexpr const char* kCycleMessage =
    "include cycle in src/ (modules must form a DAG)";

struct RuleDoc {
  const char* id;
  const char* name;
  const char* message;
  const char* rationale;
};
constexpr RuleDoc kDocs[] = {
    {"RL020", "include-cycle", kCycleMessage,
     "a cyclic include means no build order exists in which each header "
     "is self-contained; refactors ripple unboundedly"},
    {"RL021", "layer-violation",
     "include violates the layering manifest (tools/lint/layers.txt)",
     "the sharded serving stack depends on lower layers never reaching "
     "up; one upward include couples every release of both layers"},
    {"RL022", "non-self-contained",
     "self-containment violation (companion header not included first, "
     "or include does not resolve)",
     "a .cpp that includes its own header first proves that header "
     "compiles standalone; anything else hides include-order bugs"},
};

/// Module of a src/ canon path: "src/serve/net/x.hpp" -> "serve".
std::string module_of(const std::string& canon) {
  const std::size_t begin = std::strlen("src/");
  const std::size_t slash = canon.find('/', begin);
  if (slash == std::string::npos) return {};
  return canon.substr(begin, slash - begin);
}

struct IncludeSite {
  std::size_t line = 0;      // 1-based
  std::string target;        // as written: "common/rng.hpp"
  std::size_t to = SIZE_MAX; // corpus file index when the target is in-corpus
  bool resolved = false;     // in corpus OR on disk under root/src
};

std::vector<IncludeSite> include_sites(const Corpus& corpus,
                                       const SourceFile& file) {
  std::vector<IncludeSite> sites;
  for (std::size_t i = 0; i < file.code.size(); ++i) {
    const std::optional<std::string> target =
        quoted_include_target(file.code[i], file.raw[i]);
    if (!target.has_value()) continue;
    IncludeSite site;
    site.line = i + 1;
    site.target = *target;
    const std::string canon = "src/" + *target;
    const auto it = corpus.by_canon.find(canon);
    if (it != corpus.by_canon.end()) {
      site.to = it->second;
      site.resolved = true;
    } else {
      std::error_code ec;
      site.resolved =
          std::filesystem::is_regular_file(corpus.root / canon, ec) ||
          std::filesystem::is_regular_file(
              corpus.root / (canon + ".fixture"), ec);
    }
    sites.push_back(std::move(site));
  }
  return sites;
}

/// First `#include` directive (quoted or angle) in the file, or 0.
std::size_t first_include_line(const SourceFile& file) {
  static const std::regex directive(R"(^\s*#\s*include\b)");
  for (std::size_t i = 0; i < file.code.size(); ++i) {
    if (std::regex_search(file.code[i], directive)) return i + 1;
  }
  return 0;
}

// Tarjan SCC over the in-corpus src/ subgraph.
class Tarjan {
 public:
  explicit Tarjan(const std::vector<std::vector<std::size_t>>& adj)
      : adj_(adj), state_(adj.size()) {}

  std::vector<std::vector<std::size_t>> run() {
    for (std::size_t v = 0; v < adj_.size(); ++v) {
      if (state_[v].index == kUnvisited) strongconnect(v);
    }
    return components_;
  }

 private:
  static constexpr std::size_t kUnvisited = SIZE_MAX;
  struct NodeState {
    std::size_t index = kUnvisited;
    std::size_t lowlink = 0;
    bool on_stack = false;
  };

  void strongconnect(std::size_t v) {
    // Iterative DFS: each frame tracks the next edge to explore.
    struct Frame {
      std::size_t node;
      std::size_t edge = 0;
    };
    std::vector<Frame> call_stack{Frame{v}};
    while (!call_stack.empty()) {
      Frame& frame = call_stack.back();
      const std::size_t u = frame.node;
      if (frame.edge == 0) {
        state_[u].index = state_[u].lowlink = next_index_++;
        stack_.push_back(u);
        state_[u].on_stack = true;
      }
      bool descended = false;
      while (frame.edge < adj_[u].size()) {
        const std::size_t w = adj_[u][frame.edge++];
        if (state_[w].index == kUnvisited) {
          call_stack.push_back(Frame{w});
          descended = true;
          break;
        }
        if (state_[w].on_stack) {
          state_[u].lowlink = std::min(state_[u].lowlink, state_[w].index);
        }
      }
      if (descended) continue;
      if (state_[u].lowlink == state_[u].index) {
        std::vector<std::size_t> component;
        for (;;) {
          const std::size_t w = stack_.back();
          stack_.pop_back();
          state_[w].on_stack = false;
          component.push_back(w);
          if (w == u) break;
        }
        components_.push_back(std::move(component));
      }
      call_stack.pop_back();
      if (!call_stack.empty()) {
        Frame& parent = call_stack.back();
        state_[parent.node].lowlink =
            std::min(state_[parent.node].lowlink, state_[u].lowlink);
      }
    }
  }

  const std::vector<std::vector<std::size_t>>& adj_;
  std::vector<NodeState> state_;
  std::vector<std::size_t> stack_;
  std::size_t next_index_ = 0;
  std::vector<std::vector<std::size_t>> components_;
};

class ArchitecturePass : public Pass {
 public:
  explicit ArchitecturePass(LayerManifest manifest)
      : manifest_(std::move(manifest)) {}

  const char* name() const override { return "architecture"; }

  void lint_corpus(const Corpus& corpus,
                   std::vector<Finding>& out) const override {
    // src/ node set and per-file include sites.
    std::vector<std::size_t> src_files;
    std::map<std::size_t, std::vector<IncludeSite>> sites_of;
    for (std::size_t i = 0; i < corpus.files.size(); ++i) {
      const SourceFile& file = corpus.files[i];
      if (file.canon_path.compare(0, 4, "src/") != 0) continue;
      src_files.push_back(i);
      sites_of[i] = include_sites(corpus, file);
    }

    for (const std::size_t i : src_files) {
      const SourceFile& file = corpus.files[i];
      const std::string from_module = module_of(file.canon_path);
      for (const IncludeSite& site : sites_of[i]) {
        // RL022 (dangling): a quoted include must name a repo header.
        if (!site.resolved) {
          out.push_back(Finding{
              file.rel_path, site.line, kDocs[2].id, kDocs[2].name,
              "project include \"" + site.target +
                  "\" does not resolve to a header under src/"});
          continue;
        }
        // RL021 (confinement) applies by path prefix, resolved or not.
        for (const auto& [target_prefix, includer_prefix] :
             manifest_.confined) {
          if (site.target.compare(0, target_prefix.size(), target_prefix) ==
                  0 &&
              file.rel_path.compare(0, includer_prefix.size(),
                                    includer_prefix) != 0) {
            out.push_back(Finding{
                file.rel_path, site.line, kDocs[1].id, kDocs[1].name,
                "\"" + site.target + "\" is confined to " + includer_prefix +
                    " by the layering manifest"});
          }
        }
        // RL021 (layer order), only with a loaded manifest.
        if (!manifest_.loaded || from_module.empty()) continue;
        const std::string to_module = module_of("src/" + site.target);
        if (to_module.empty() || to_module == from_module) continue;
        const auto from_it = manifest_.layer_of.find(from_module);
        const auto to_it = manifest_.layer_of.find(to_module);
        if (from_it == manifest_.layer_of.end()) {
          out.push_back(Finding{
              file.rel_path, site.line, kDocs[1].id, kDocs[1].name,
              "module '" + from_module +
                  "' is not declared in the layering manifest"});
          continue;
        }
        if (to_it == manifest_.layer_of.end()) {
          out.push_back(Finding{
              file.rel_path, site.line, kDocs[1].id, kDocs[1].name,
              "module '" + to_module +
                  "' is not declared in the layering manifest"});
          continue;
        }
        if (to_it->second > from_it->second) {
          out.push_back(Finding{
              file.rel_path, site.line, kDocs[1].id, kDocs[1].name,
              "'" + from_module + "' (layer " +
                  std::to_string(from_it->second) + ") may not include '" +
                  to_module + "' (layer " + std::to_string(to_it->second) +
                  ") above it"});
        } else if (to_it->second == from_it->second &&
                   manifest_.allowed.count({from_module, to_module}) == 0) {
          out.push_back(Finding{
              file.rel_path, site.line, kDocs[1].id, kDocs[1].name,
              "same-layer include '" + from_module + "' -> '" + to_module +
                  "' is not sanctioned (add `allow " + from_module + " -> " +
                  to_module + "` with a reason, or restructure)"});
        }
      }

      // RL022 (companion-first): a src/ .cpp whose companion header
      // exists must include it before anything else.
      check_companion_first(corpus, file, sites_of[i], out);
    }

    // RL020: strongly connected components of the in-corpus subgraph.
    report_cycles(corpus, src_files, sites_of, out);
  }

  void describe(std::ostream& out) const override {
    for (const RuleDoc& doc : kDocs) {
      out << doc.id << "  " << doc.name << "\n    scope: src/ include graph"
          << "\n    why:   " << doc.rationale << "\n";
    }
  }

 private:
  static void check_companion_first(const Corpus& corpus,
                                    const SourceFile& file,
                                    const std::vector<IncludeSite>& sites,
                                    std::vector<Finding>& out) {
    const std::string& canon = file.canon_path;
    const std::size_t dot = canon.rfind('.');
    if (dot == std::string::npos) return;
    const std::string ext = canon.substr(dot);
    if (ext != ".cpp" && ext != ".cc" && ext != ".cxx") return;
    const std::string companion = canon.substr(0, dot) + ".hpp";
    std::error_code ec;
    const bool companion_exists =
        corpus.by_canon.count(companion) > 0 ||
        std::filesystem::is_regular_file(corpus.root / companion, ec) ||
        std::filesystem::is_regular_file(
            corpus.root / (companion + ".fixture"), ec);
    if (!companion_exists) return;
    const std::string expected = companion.substr(std::strlen("src/"));
    const std::size_t first_directive = first_include_line(file);
    const bool ok = !sites.empty() && first_directive == sites.front().line &&
                    sites.front().target == expected;
    if (!ok) {
      out.push_back(Finding{
          file.rel_path, first_directive == 0 ? 1 : first_directive,
          kDocs[2].id, kDocs[2].name,
          "companion header \"" + expected +
              "\" must be the first include (self-containment proof)"});
    }
  }

  static void report_cycles(
      const Corpus& corpus, const std::vector<std::size_t>& src_files,
      const std::map<std::size_t, std::vector<IncludeSite>>& sites_of,
      std::vector<Finding>& out) {
    // Compact node ids over src files, adjacency from in-corpus edges.
    std::map<std::size_t, std::size_t> node_of;
    for (const std::size_t i : src_files) {
      node_of.emplace(i, node_of.size());
    }
    std::vector<std::vector<std::size_t>> adj(node_of.size());
    std::vector<bool> self_loop(node_of.size(), false);
    for (const std::size_t i : src_files) {
      for (const IncludeSite& site : sites_of.at(i)) {
        if (site.to == SIZE_MAX) continue;
        const auto it = node_of.find(site.to);
        if (it == node_of.end()) continue;
        adj[node_of.at(i)].push_back(it->second);
        if (it->second == node_of.at(i)) self_loop[node_of.at(i)] = true;
      }
    }
    const std::vector<std::vector<std::size_t>> components =
        Tarjan(adj).run();

    std::vector<std::size_t> index_of_node(node_of.size());
    for (const auto& [file_index, node] : node_of) {
      index_of_node[node] = file_index;
    }
    std::vector<Finding> cycle_findings;
    for (const std::vector<std::size_t>& component : components) {
      if (component.size() < 2 &&
          !(component.size() == 1 && self_loop[component.front()])) {
        continue;
      }
      std::vector<std::string> members;
      for (const std::size_t node : component) {
        members.push_back(corpus.files[index_of_node[node]].canon_path);
      }
      std::sort(members.begin(), members.end());
      // Anchor the finding at the smallest member's first include into
      // the component.
      const SourceFile& anchor =
          corpus.files[corpus.by_canon.at(members.front())];
      std::size_t line = 1;
      for (const IncludeSite& site :
           sites_of.at(corpus.by_canon.at(members.front()))) {
        if (site.to != SIZE_MAX &&
            std::find(members.begin(), members.end(),
                      corpus.files[site.to].canon_path) != members.end()) {
          line = site.line;
          break;
        }
      }
      std::string list;
      for (std::size_t i = 0; i < members.size(); ++i) {
        list += (i ? ", " : "") + members[i];
      }
      cycle_findings.push_back(Finding{
          anchor.rel_path, line, kDocs[0].id, kDocs[0].name,
          std::string(kCycleMessage) + ": " + list});
    }
    std::sort(cycle_findings.begin(), cycle_findings.end(),
              [](const Finding& a, const Finding& b) {
                return a.message < b.message;
              });
    for (Finding& f : cycle_findings) out.push_back(std::move(f));
  }

  LayerManifest manifest_;
};

}  // namespace

std::unique_ptr<Pass> make_architecture_pass(LayerManifest manifest) {
  return std::make_unique<ArchitecturePass>(std::move(manifest));
}

// ---------------------------------------------------------------------------
// DOT export (--graph-dot).

std::string include_graph_dot(const Corpus& corpus,
                              const LayerManifest& manifest) {
  // Module-level aggregation: nodes are src/ modules, edge labels count
  // file-level includes.
  std::set<std::string> modules;
  std::map<std::pair<std::string, std::string>, std::size_t> edges;
  for (const SourceFile& file : corpus.files) {
    if (file.canon_path.compare(0, 4, "src/") != 0) continue;
    const std::string from = module_of(file.canon_path);
    if (from.empty()) continue;
    modules.insert(from);
    for (std::size_t i = 0; i < file.code.size(); ++i) {
      const std::optional<std::string> target =
          quoted_include_target(file.code[i], file.raw[i]);
      if (!target.has_value()) continue;
      const std::string to = module_of("src/" + *target);
      if (to.empty() || to == from) continue;
      modules.insert(to);
      ++edges[{from, to}];
    }
  }

  std::ostringstream out;
  out << "// Module-level include graph of src/, generated by\n"
         "//   repro_lint --graph-dot  (refreshed by scripts/check.sh).\n"
         "// Edge labels are file-level include counts; ranks follow the\n"
         "// layering manifest tools/lint/layers.txt.\n"
         "digraph include_graph {\n"
         "  rankdir=BT;\n"
         "  node [shape=box, fontname=\"monospace\"];\n";
  if (manifest.loaded) {
    std::map<int, std::vector<std::string>> by_layer;
    for (const std::string& module : modules) {
      const auto it = manifest.layer_of.find(module);
      if (it != manifest.layer_of.end()) {
        by_layer[it->second].push_back(module);
      }
    }
    for (const auto& [layer, members] : by_layer) {
      out << "  { rank=same;";
      for (const std::string& module : members) {
        out << " \"" << module << "\";";
      }
      out << " }  // layer " << layer << "\n";
    }
  }
  for (const std::string& module : modules) {
    out << "  \"" << module << "\";\n";
  }
  for (const auto& [edge, count] : edges) {
    out << "  \"" << edge.first << "\" -> \"" << edge.second
        << "\" [label=\"" << count << "\"];\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace repro::lint
