#include "lint/engine.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <regex>
#include <sstream>

#include "common/parallel/parallel_for.hpp"

namespace repro::lint {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Lexer.

namespace {

Suppressions scan_suppressions(const std::vector<std::string>& comments,
                               const std::vector<std::string>& code) {
  Suppressions out;
  static const std::regex directive(
      R"(repro-lint:\s*allow\(\s*([A-Za-z0-9_,\s]+)\s*\))",
      std::regex::ECMAScript);
  static const std::regex reason_tail(
      R"(repro-lint:\s*allow\([^)]*\)\s*--\s*\S)", std::regex::ECMAScript);
  for (std::size_t i = 0; i < comments.size(); ++i) {
    const std::string& comment = comments[i];
    if (comment.find("repro-lint:") == std::string::npos) continue;
    std::smatch m;
    if (!std::regex_search(comment, m, directive)) continue;
    const std::size_t line = i + 1;
    if (!std::regex_search(comment, reason_tail)) {
      out.missing_reason.push_back(line);
      continue;  // an unjustified allow() suppresses nothing
    }
    std::set<std::string> ids;
    std::stringstream list(m[1].str());
    std::string id;
    while (std::getline(list, id, ',')) {
      id.erase(std::remove_if(id.begin(), id.end(),
                              [](unsigned char c) { return std::isspace(c); }),
               id.end());
      if (!id.empty()) ids.insert(id);
    }
    out.by_line[line].insert(ids.begin(), ids.end());
    // Comment-only line: the directive governs the following line.
    const std::string& code_line = code[i];
    const bool code_empty = std::all_of(
        code_line.begin(), code_line.end(),
        [](unsigned char c) { return std::isspace(c) || c == 0; });
    if (code_empty) out.by_line[line + 1].insert(ids.begin(), ids.end());
  }
  return out;
}

}  // namespace

SourceFile lex_file(std::string rel_path, const std::string& content) {
  SourceFile out;
  out.rel_path = std::move(rel_path);
  out.canon_path = out.rel_path;
  if (out.canon_path.ends_with(".fixture")) {
    out.canon_path.resize(out.canon_path.size() - std::strlen(".fixture"));
  }
  out.ends_with_newline = !content.empty() && content.back() == '\n';

  enum class State { kCode, kLineComment, kBlockComment, kString, kChar,
                     kRawString };
  State state = State::kCode;
  std::string raw_line, code_line, comment_line;
  std::string raw_delim;  // raw-string closing delimiter: )delim"
  bool escaped = false;
  std::size_t line_no = 1;

  auto flush_line = [&] {
    out.raw.push_back(raw_line);
    out.code.push_back(code_line);
    out.comments.push_back(comment_line);
    raw_line.clear();
    code_line.clear();
    comment_line.clear();
  };

  for (std::size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    if (c == '\n') {
      if (state == State::kLineComment) state = State::kCode;
      // Unterminated ordinary string/char at end of line: reset (line
      // splices are not worth modeling here).
      if (state == State::kString || state == State::kChar) {
        state = State::kCode;
      }
      if (i > 0 && content[i - 1] == '\r' && !out.has_crlf) {
        out.has_crlf = true;
        out.first_crlf_line = line_no;
      }
      flush_line();
      ++line_no;
      escaped = false;
      continue;
    }
    if (c != '\r') raw_line.push_back(c);
    const char next = i + 1 < content.size() ? content[i + 1] : '\0';

    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          code_line += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          code_line += "  ";
          ++i;
        } else if (c == '"') {
          // Raw string? The opener is R" possibly behind an encoding
          // prefix (u8R", LR", ...).
          const bool raw_string =
              !raw_line.empty() && raw_line.size() >= 2 &&
              raw_line[raw_line.size() - 2] == 'R' &&
              (raw_line.size() == 2 ||
               !(std::isalnum(static_cast<unsigned char>(
                     raw_line[raw_line.size() - 3])) ||
                 raw_line[raw_line.size() - 3] == '_'));
          if (raw_string) {
            state = State::kRawString;
            raw_delim = ")";
            for (std::size_t j = i + 1;
                 j < content.size() && content[j] != '('; ++j) {
              raw_delim += content[j];
            }
            raw_delim += '"';
          } else {
            state = State::kString;
          }
          code_line.push_back('"');
          escaped = false;
        } else if (c == '\'') {
          state = State::kChar;
          code_line.push_back('\'');
          escaped = false;
        } else {
          code_line.push_back(c);
        }
        break;
      case State::kLineComment:
        if (c != '\r') comment_line.push_back(c);
        code_line.push_back(' ');
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          code_line += "  ";
          ++i;
        } else {
          comment_line.push_back(c);
          code_line.push_back(' ');
        }
        break;
      case State::kString:
        if (escaped) {
          escaped = false;
          code_line.push_back(' ');
        } else if (c == '\\') {
          escaped = true;
          code_line.push_back(' ');
        } else if (c == '"') {
          state = State::kCode;
          code_line.push_back('"');
        } else {
          code_line.push_back(' ');
        }
        break;
      case State::kChar:
        if (escaped) {
          escaped = false;
          code_line.push_back(' ');
        } else if (c == '\\') {
          escaped = true;
          code_line.push_back(' ');
        } else if (c == '\'') {
          state = State::kCode;
          code_line.push_back('\'');
        } else {
          code_line.push_back(' ');
        }
        break;
      case State::kRawString: {
        code_line.push_back(' ');
        // Close when the tail of what we've consumed equals )delim".
        if (c == '"' && raw_line.size() >= raw_delim.size() &&
            raw_line.compare(raw_line.size() - raw_delim.size(),
                             raw_delim.size(), raw_delim) == 0) {
          state = State::kCode;
          code_line.back() = '"';
        }
        break;
      }
    }
  }
  if (!raw_line.empty() || out.raw.empty()) flush_line();
  out.suppressions = scan_suppressions(out.comments, out.code);
  return out;
}

// ---------------------------------------------------------------------------
// Pass defaults.

void Pass::lint_file(const SourceFile&, std::vector<Finding>&) const {}
void Pass::lint_corpus(const Corpus&, std::vector<Finding>&) const {}
void Pass::describe(std::ostream&) const {}

// ---------------------------------------------------------------------------
// Engine.

void Engine::add_pass(std::unique_ptr<Pass> pass) {
  passes_.push_back(std::move(pass));
}

EngineResult Engine::run(const Corpus& corpus, bool emit_rl010) const {
  EngineResult result;
  result.files_scanned = corpus.files.size();

  std::map<std::string, const SourceFile*> by_rel;
  for (const SourceFile& file : corpus.files) {
    by_rel.emplace(file.rel_path, &file);
  }
  const auto waived = [&](const Finding& f) {
    const auto it = by_rel.find(f.file);
    return it != by_rel.end() &&
           it->second->suppressions.allows(f.line, f.rule_id);
  };

  // RL010 is the engine's own rule: a suppression without a reason is a
  // finding and suppresses nothing.
  if (emit_rl010) {
    for (const SourceFile& file : corpus.files) {
      for (const std::size_t line : file.suppressions.missing_reason) {
        result.findings.push_back(Finding{
            file.rel_path, line, "RL010", "allow-without-reason",
            "repro-lint: allow(...) without a `-- <reason>` tail"});
      }
    }
  }

  const std::size_t n = corpus.files.size();
  constexpr std::size_t kGrain = 4;
  for (const std::unique_ptr<Pass>& pass : passes_) {
    const auto start = std::chrono::steady_clock::now();
    std::size_t pass_findings = 0;

    // Per-file sweep: per-chunk buffers, merged in chunk (= path) order
    // so the result is identical at every lane count.
    std::vector<std::vector<Finding>> parts(
        parallel::chunk_count(n, kGrain));
    parallel::parallel_for(0, n, kGrain,
                           [&](std::size_t begin, std::size_t end) {
      std::vector<Finding>& slot =
          parts[parallel::chunk_index(0, kGrain, begin)];
      for (std::size_t i = begin; i < end; ++i) {
        pass->lint_file(corpus.files[i], slot);
      }
    });
    for (std::vector<Finding>& part : parts) {
      for (Finding& f : part) {
        if (waived(f)) continue;
        result.findings.push_back(std::move(f));
        ++pass_findings;
      }
    }

    std::vector<Finding> corpus_findings;
    pass->lint_corpus(corpus, corpus_findings);
    for (Finding& f : corpus_findings) {
      if (waived(f)) continue;
      result.findings.push_back(std::move(f));
      ++pass_findings;
    }

    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    result.timings.push_back(
        PassTiming{pass->name(), elapsed.count(), pass_findings});
  }

  std::stable_sort(result.findings.begin(), result.findings.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.file != b.file) return a.file < b.file;
                     if (a.line != b.line) return a.line < b.line;
                     return a.rule_id < b.rule_id;
                   });
  return result;
}

// ---------------------------------------------------------------------------
// Input collection and corpus loading.

namespace {

bool has_source_extension(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".hpp" ||
         ext == ".h" || ext == ".hh";
}

bool is_fixture_source(const fs::path& path) {
  return path.extension().string() == ".fixture" &&
         has_source_extension(path.stem());
}

}  // namespace

std::vector<fs::path> collect_files(const std::vector<std::string>& inputs,
                                    const fs::path& root,
                                    bool include_fixtures, bool& io_error) {
  std::vector<fs::path> files;
  for (const std::string& input : inputs) {
    fs::path p(input);
    if (p.is_relative()) p = root / p;
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (fs::recursive_directory_iterator it(p, ec), end; it != end;
           it.increment(ec)) {
        if (ec) break;
        if (!it->is_regular_file()) continue;
        if (has_source_extension(it->path()) ||
            (include_fixtures && is_fixture_source(it->path()))) {
          files.push_back(it->path());
        }
      }
    } else if (fs::is_regular_file(p, ec)) {
      files.push_back(p);  // explicit files are always linted
    } else {
      std::cerr << "repro_lint: no such file or directory: " << input << "\n";
      io_error = true;
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

namespace {

std::string relative_to(const fs::path& file, const fs::path& root) {
  std::error_code ec;
  const fs::path rel = fs::relative(file, root, ec);
  if (ec || rel.empty() || *rel.begin() == "..") {
    return file.generic_string();
  }
  return rel.generic_string();
}

}  // namespace

Corpus load_corpus(const std::vector<fs::path>& files, const fs::path& root,
                   bool& io_error) {
  Corpus corpus;
  corpus.root = root;

  // Read serially (stable stderr order on IO errors), lex in parallel
  // into pre-sized slots keyed by the sorted file order.
  std::vector<std::string> contents(files.size());
  std::vector<bool> readable(files.size(), false);
  for (std::size_t i = 0; i < files.size(); ++i) {
    std::ifstream in(files[i], std::ios::binary);
    if (!in) {
      std::cerr << "repro_lint: cannot read " << files[i] << "\n";
      io_error = true;
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    contents[i] = buffer.str();
    readable[i] = true;
  }

  corpus.files.resize(files.size());
  parallel::parallel_for(0, files.size(), 8,
                         [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      if (!readable[i]) continue;
      corpus.files[i] = lex_file(relative_to(files[i], root), contents[i]);
    }
  });

  // Drop unreadable slots, keeping sorted order.
  std::vector<SourceFile> kept;
  kept.reserve(corpus.files.size());
  for (std::size_t i = 0; i < corpus.files.size(); ++i) {
    if (readable[i]) kept.push_back(std::move(corpus.files[i]));
  }
  corpus.files = std::move(kept);
  std::sort(corpus.files.begin(), corpus.files.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.rel_path < b.rel_path;
            });
  for (std::size_t i = 0; i < corpus.files.size(); ++i) {
    corpus.by_canon[corpus.files[i].canon_path] = i;
  }
  return corpus;
}

// ---------------------------------------------------------------------------
// Shared helpers.

bool path_has_prefix(const std::string& path,
                     const std::vector<std::string>& prefixes) {
  return std::any_of(prefixes.begin(), prefixes.end(),
                     [&](const std::string& p) {
                       return path.compare(0, p.size(), p) == 0;
                     });
}

bool is_header(const std::string& path) {
  return path.ends_with(".hpp") || path.ends_with(".h") ||
         path.ends_with(".hh") || path.ends_with(".hpp.fixture") ||
         path.ends_with(".h.fixture");
}

std::optional<std::string> first_string_literal(const std::string& raw,
                                                std::size_t from) {
  const std::size_t open = raw.find('"', from);
  if (open == std::string::npos) return std::nullopt;
  std::string value;
  for (std::size_t i = open + 1; i < raw.size(); ++i) {
    if (raw[i] == '\\') {
      ++i;
      if (i < raw.size()) value.push_back(raw[i]);
    } else if (raw[i] == '"') {
      return value;
    } else {
      value.push_back(raw[i]);
    }
  }
  return std::nullopt;
}

std::optional<std::string> quoted_include_target(const std::string& code,
                                                 const std::string& raw) {
  static const std::regex directive(R"(^\s*#\s*include\s*")");
  if (!std::regex_search(code, directive)) return std::nullopt;
  // The stripped line blanks the literal's contents; the raw line still
  // carries the target.
  return first_string_literal(raw, 0);
}

// ---------------------------------------------------------------------------
// Function spans.

const FunctionSpans::Span* FunctionSpans::smallest_enclosing(
    std::size_t line) const {
  const Span* best = nullptr;
  for (const Span& span : spans) {
    if (line < span.begin || line > span.end) continue;
    if (best == nullptr || span.end - span.begin < best->end - best->begin) {
      best = &span;
    }
  }
  return best;
}

FunctionSpans find_function_spans(const SourceFile& file) {
  FunctionSpans out;
  // A '{' opens a function body when the preceding significant tokens
  // end in ')' (allowing const/noexcept/override/final/try and a
  // trailing-return type in between). Only the OUTERMOST such block is
  // recorded: nested control-flow blocks belong to their function.
  static const std::regex function_tail(
      R"(\)\s*(const\b)?\s*(noexcept(\s*\([^()]*\))?)?\s*)"
      R"((override\b|final\b)?\s*(->\s*[~\w:<>,&*\[\]\s]+)?\s*(try\b)?\s*$)");

  std::string tail;  // rolling window of recent significant chars
  int depth = 0;
  bool in_span = false;
  int span_open_depth = 0;
  std::size_t span_begin = 0;

  for (std::size_t li = 0; li < file.code.size(); ++li) {
    for (const char c : file.code[li]) {
      if (std::isspace(static_cast<unsigned char>(c)) || c == '\0') {
        if (!tail.empty() && tail.back() != ' ') tail.push_back(' ');
        continue;
      }
      if (c == '{') {
        if (!in_span) {
          std::string probe = tail;
          while (!probe.empty() && probe.back() == ' ') probe.pop_back();
          if (std::regex_search(probe, function_tail)) {
            in_span = true;
            span_open_depth = depth;
            span_begin = li + 1;
          }
        }
        ++depth;
      } else if (c == '}') {
        --depth;
        if (in_span && depth == span_open_depth) {
          out.spans.push_back(FunctionSpans::Span{span_begin, li + 1});
          in_span = false;
        }
      }
      tail.push_back(c);
      if (tail.size() > 96) tail.erase(0, tail.size() - 96);
    }
  }
  if (in_span) {
    out.spans.push_back(FunctionSpans::Span{span_begin, file.code.size()});
  }
  return out;
}

}  // namespace repro::lint
