// repro_served — CLI daemon for the in-process trace-generation
// service: loads (or trains) a model into the ModelRegistry, starts the
// background batch scheduler, serves a stream of requests, and prints a
// service report (queue depth, batch sizes, latency percentiles,
// admission counters).
//
// Modes:
//   repro_served --selftest
//       Trains a toy model, serves a burst of requests through the full
//       queue -> batcher -> cache path, and verifies the served bits
//       against direct library calls. Non-zero exit on any mismatch —
//       registered in ctest as the serving smoke test (label: serve).
//   repro_served --checkpoint PREFIX --classes a,b[,c...] [options]
//       Serves `--requests N` seeded requests against a saved
//       TraceDiffusion checkpoint (see TraceDiffusion::save) and writes
//       SERVED_report.json (respecting REPRO_BENCH_DIR).
//
// Observability options (any mode):
//   --health                 print the service health snapshot
//                            (SLO budget status, lane percentiles) as
//                            JSON after the run
//   --dump-flightrec [PATH]  write the flight-recorder dump (default
//                            FLIGHTREC_dump.json, respecting
//                            REPRO_BENCH_DIR); arms the recorder even
//                            with REPRO_TELEMETRY off
//
// The selftest additionally requires the flight recorder to hold a
// complete admission-to-terminal timeline for every submitted request
// (validated through the same JSON round-trip repro_trace_inspect uses).
//
// Options: --requests N (default 32), --count N flows/request (2),
//          --steps N DDIM steps (8), --batch N max flows/model call (8),
//          --queue N capacity (64), --lora PATH adapter overlay.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/env.hpp"
#include "common/rng.hpp"
#include "common/telemetry/export.hpp"
#include "common/telemetry/metrics.hpp"
#include "flowgen/dataset.hpp"
#include "flowgen/generator.hpp"
#include "serve/observe/inspect.hpp"
#include "serve/service.hpp"

using namespace repro;

namespace {

diffusion::PipelineConfig toy_config() {
  diffusion::PipelineConfig cfg;
  cfg.packets = 8;
  cfg.autoencoder.hidden_dim = 48;
  cfg.autoencoder.latent_dim = 8;
  cfg.unet.base_channels = 8;
  cfg.unet.temb_dim = 16;
  cfg.unet.groups = 4;
  cfg.timesteps = 20;
  cfg.ae_epochs = 10;
  cfg.diffusion_epochs = 2;
  cfg.control_epochs = 1;
  cfg.seed = 5;
  return cfg;
}

std::shared_ptr<diffusion::TraceDiffusion> train_toy_model() {
  Rng rng(77);
  flowgen::Dataset ds;
  for (std::size_t i = 0; i < 5; ++i) {
    net::Flow a = flowgen::generate_flow(flowgen::App::kNetflix, 8, rng);
    a.label = 0;
    ds.flows.push_back(std::move(a));
    net::Flow b = flowgen::generate_flow(flowgen::App::kTeams, 8, rng);
    b.label = 1;
    ds.flows.push_back(std::move(b));
  }
  auto pipeline = std::make_shared<diffusion::TraceDiffusion>(
      toy_config(), std::vector<std::string>{"netflix", "teams"});
  pipeline->fit(ds);
  return pipeline;
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(csv.substr(start));
      break;
    }
    out.push_back(csv.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

std::uint64_t hash_flows(const std::vector<net::Flow>& flows) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const auto& flow : flows) {
    for (const auto& pkt : flow.packets) {
      const auto wire = pkt.serialize();
      for (const unsigned char byte : wire) {
        h ^= byte;
        h *= 1099511628211ULL;
      }
    }
  }
  return h;
}

void print_stats(serve::TraceService& service) {
  const auto& stats = service.stats();
  const auto latency = stats.latency.snapshot();
  const auto batch = stats.batch_size.snapshot();
  std::printf("serve: completed=%llu cache_hits=%llu rejected_full=%llu "
              "cancelled_deadline=%llu batches=%llu\n",
              static_cast<unsigned long long>(stats.completed.value()),
              static_cast<unsigned long long>(stats.cache_hits.value()),
              static_cast<unsigned long long>(stats.rejected_full.value()),
              static_cast<unsigned long long>(
                  stats.cancelled_deadline.value()),
              static_cast<unsigned long long>(stats.batches.value()));
  std::printf("serve: batch_size mean=%.2f max=%.0f | latency p50=%.1fms "
              "p95=%.1fms p99=%.1fms\n",
              batch.mean(), batch.max, latency.quantile(0.5) * 1e3,
              latency.quantile(0.95) * 1e3, latency.quantile(0.99) * 1e3);
}

int run(int argc, char** argv) {
  bool selftest = false, health = false, dump_flightrec = false;
  std::string checkpoint, lora_path, classes_csv;
  std::string flightrec_path;
  std::size_t requests = 32, count = 2, steps = 8, max_batch = 8, queue = 64;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      return i + 1 < argc ? std::string(argv[++i]) : std::string();
    };
    if (arg == "--selftest") selftest = true;
    else if (arg == "--health") health = true;
    else if (arg == "--dump-flightrec") {
      dump_flightrec = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') flightrec_path = next();
    }
    else if (arg == "--checkpoint") checkpoint = next();
    else if (arg == "--lora") lora_path = next();
    else if (arg == "--classes") classes_csv = next();
    else if (arg == "--requests") requests = parse_size(next()).value_or(requests);
    else if (arg == "--count") count = parse_size(next()).value_or(count);
    else if (arg == "--steps") steps = parse_size(next()).value_or(steps);
    else if (arg == "--batch") max_batch = parse_size(next()).value_or(max_batch);
    else if (arg == "--queue") queue = parse_size(next()).value_or(queue);
    else {
      std::fprintf(stderr, "repro_served: unknown argument '%s'\n",
                   arg.c_str());
      return 2;
    }
  }

  serve::ModelRegistry registry;
  std::shared_ptr<diffusion::TraceDiffusion> pipeline;
  std::size_t num_classes = 2;
  if (!checkpoint.empty()) {
    const auto class_names = split_csv(classes_csv);
    if (class_names.empty() || class_names.front().empty()) {
      std::fprintf(stderr,
                   "repro_served: --checkpoint requires --classes a,b,...\n");
      return 2;
    }
    registry.load_checkpoint("default", toy_config(), class_names,
                             checkpoint, "ckpt-v1", lora_path);
    num_classes = class_names.size();
    std::printf("serve: loaded checkpoint '%s' (%zu classes)\n",
                checkpoint.c_str(), num_classes);
  } else {
    pipeline = train_toy_model();
    registry.install("default", pipeline, "toy-v1");
    std::printf("serve: trained toy model (2 classes)\n");
  }

  serve::ServiceConfig cfg;
  cfg.queue_capacity = queue;
  cfg.batch.max_batch_flows = max_batch;
  cfg.batch.max_wait = 0.001;
  cfg.worker_idle_wait = 0.002;
  cfg.base_options.ddim_steps = steps;
  // The selftest asserts full timeline coverage; --dump-flightrec must
  // produce a dump regardless of REPRO_TELEMETRY. Both arm the recorder.
  cfg.flightrec_force = selftest || dump_flightrec || health;
  serve::TraceService service(registry, cfg);
  service.start();

  // Closed-loop window driver: keep a few requests in flight so the
  // batcher has material, without overrunning the bounded queue.
  struct InFlight {
    std::shared_future<serve::Response> response;
    int class_id;
    std::uint64_t seed;
  };
  std::vector<InFlight> in_flight;
  struct Served {
    serve::Response response;
    int class_id;
    std::uint64_t seed;
  };
  std::vector<Served> served;
  std::size_t submitted = 0, served_flows = 0, mismatches = 0;
  while (submitted < requests || !in_flight.empty()) {
    while (submitted < requests && in_flight.size() < max_batch) {
      serve::GenerateRequest req;
      req.class_id = static_cast<int>(submitted % num_classes);
      req.seed = 1000 + submitted;
      req.count = count;
      req.ddim_steps = steps;
      const auto result = service.submit(req);
      ++submitted;
      if (result.accepted) {
        in_flight.push_back({result.response, req.class_id, req.seed});
      }
    }
    if (in_flight.empty()) continue;
    const InFlight front = in_flight.front();
    in_flight.erase(in_flight.begin());
    const serve::Response response = front.response.get();
    if (response.status != serve::ResponseStatus::kOk) continue;
    served_flows += response.flows.size();
    if (selftest && pipeline) {
      served.push_back({response, front.class_id, front.seed});
    }
  }
  service.stop();

  // Selftest verification runs only after the worker stopped: the
  // pipeline object supports one generator at a time, and the served
  // bits must match the library regardless of when they are replayed.
  for (const Served& s : served) {
    diffusion::GenerateOptions lib_opts = cfg.base_options;
    lib_opts.count = count;
    const auto direct =
        pipeline->generate_seeded(s.class_id, lib_opts, s.seed);
    if (hash_flows(direct) != hash_flows(s.response.flows)) ++mismatches;
  }

  std::printf("serve: %zu requests submitted, %zu flows served\n",
              submitted, served_flows);
  print_stats(service);

  if (health) {
    std::printf("%s\n", service.health_json().c_str());
  }
  if (dump_flightrec) {
    const std::string dump_path =
        flightrec_path.empty() ? telemetry::report_path("FLIGHTREC_dump.json")
                               : flightrec_path;
    if (!telemetry::write_text_file(dump_path,
                                    service.flight_recorder().dump_json())) {
      std::fprintf(stderr, "repro_served: cannot write %s\n",
                   dump_path.c_str());
      return 1;
    }
    std::printf("serve: flight recorder dump written to %s\n",
                dump_path.c_str());
  }

  const std::string report = telemetry::metrics_json(
      telemetry::Registry::instance().snapshot());
  const std::string path = telemetry::report_path("SERVED_report.json");
  if (!telemetry::write_text_file(path, report)) {
    std::fprintf(stderr, "repro_served: cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("serve: report written to %s\n", path.c_str());

  if (selftest) {
    // Flight-recorder coverage gate: the dump must reconstruct, through
    // the same JSON round-trip repro_trace_inspect uses, a complete
    // admission-to-terminal timeline for every submitted request.
    const auto dump = serve::observe::parse_flight_dump(
        service.flight_recorder().dump_json());
    if (!dump) {
      std::fprintf(stderr,
                   "repro_served: SELFTEST FAILED — flight dump unparsable\n");
      return 1;
    }
    const auto inspect = serve::observe::reconstruct(dump->events);
    if (inspect.requests.size() != submitted ||
        inspect.complete != submitted) {
      std::fprintf(stderr,
                   "repro_served: SELFTEST FAILED — flight recorder covers "
                   "%zu/%zu requests (%zu complete)\n",
                   inspect.requests.size(), submitted, inspect.complete);
      return 1;
    }
    std::printf("serve: flight recorder covered %zu/%zu request timelines\n",
                inspect.complete, submitted);
    std::printf("serve: health %s\n", service.health_json().c_str());
    if (mismatches > 0) {
      std::fprintf(stderr,
                   "repro_served: SELFTEST FAILED — %zu served responses "
                   "diverged from the library\n",
                   mismatches);
      return 1;
    }
    if (served_flows == 0) {
      std::fprintf(stderr, "repro_served: SELFTEST FAILED — nothing served\n");
      return 1;
    }
    std::printf("serve: selftest OK — every served response bit-identical "
                "to the library\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
