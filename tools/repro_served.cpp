// repro_served — CLI daemon for the trace-generation service: loads (or
// trains) a model into the ModelRegistry, fans requests across N
// sharded worker lanes, and — in listen mode — fronts them with the
// socket server (length-prefixed JSON protocol, see
// src/serve/net/protocol.hpp).
//
// Modes:
//   repro_served --selftest
//       Trains a toy model, serves a burst of requests through the full
//       queue -> batcher -> cache path (in-process), and verifies the
//       served bits against direct library calls. Non-zero exit on any
//       mismatch — registered in ctest as the serving smoke test
//       (label: serve).
//   repro_served --socket-selftest
//       Same toy model, but served over a real TCP connection: starts
//       the socket front-end on an ephemeral port, drives it with
//       BlockingClient (synchronous calls, a pipelined burst, and a
//       malformed frame that must answer a typed error without killing
//       the connection), verifies decoded wire bytes against the
//       library, and requires the MERGED flight dump (frontend conn
//       events + every shard) to cover every request end to end.
//   repro_served --listen [PORT]
//       Daemon mode: binds 127.0.0.1:PORT (default REPRO_SERVE_PORT,
//       else an ephemeral port, printed on stdout) and serves until
//       stdin reaches EOF. Drive it with tools/repro_client.
//   repro_served --checkpoint PREFIX --classes a,b[,c...] [options]
//       Serves `--requests N` seeded requests against a saved
//       TraceDiffusion checkpoint and writes SERVED_report.json
//       (respecting REPRO_BENCH_DIR).
//
// Observability options (any mode):
//   --health                 print the fleet health snapshot (worst-lane
//                            SLO status, per-shard counters, connection
//                            section in listen/socket modes) as JSON
//   --dump-flightrec [PATH]  write the MERGED flight-recorder dump
//                            (default FLIGHTREC_dump.json, respecting
//                            REPRO_BENCH_DIR); arms recorders even with
//                            REPRO_TELEMETRY off
//
// Options: --lanes N worker lanes (default REPRO_SERVE_LANES, else 1),
//          --requests N (default 32), --count N flows/request (2),
//          --steps N DDIM steps (8), --batch N max flows/model call (8),
//          --queue N capacity per lane (64), --lora PATH adapter overlay.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/env.hpp"
#include "common/rng.hpp"
#include "common/telemetry/export.hpp"
#include "common/telemetry/metrics.hpp"
#include "flowgen/dataset.hpp"
#include "flowgen/generator.hpp"
#include "serve/net/client.hpp"
#include "serve/net/server.hpp"
#include "serve/observe/inspect.hpp"
#include "serve/shard.hpp"

using namespace repro;

namespace {

diffusion::PipelineConfig toy_config() {
  diffusion::PipelineConfig cfg;
  cfg.packets = 8;
  cfg.autoencoder.hidden_dim = 48;
  cfg.autoencoder.latent_dim = 8;
  cfg.unet.base_channels = 8;
  cfg.unet.temb_dim = 16;
  cfg.unet.groups = 4;
  cfg.timesteps = 20;
  cfg.ae_epochs = 10;
  cfg.diffusion_epochs = 2;
  cfg.control_epochs = 1;
  cfg.seed = 5;
  return cfg;
}

std::shared_ptr<diffusion::TraceDiffusion> train_toy_model() {
  Rng rng(77);
  flowgen::Dataset ds;
  for (std::size_t i = 0; i < 5; ++i) {
    net::Flow a = flowgen::generate_flow(flowgen::App::kNetflix, 8, rng);
    a.label = 0;
    ds.flows.push_back(std::move(a));
    net::Flow b = flowgen::generate_flow(flowgen::App::kTeams, 8, rng);
    b.label = 1;
    ds.flows.push_back(std::move(b));
  }
  auto pipeline = std::make_shared<diffusion::TraceDiffusion>(
      toy_config(), std::vector<std::string>{"netflix", "teams"});
  pipeline->fit(ds);
  return pipeline;
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(csv.substr(start));
      break;
    }
    out.push_back(csv.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

void print_stats(serve::ShardedService& sharded) {
  const auto& stats = sharded.shard(0).stats();  // registry-backed globals
  const auto latency = stats.latency.snapshot();
  const auto batch = stats.batch_size.snapshot();
  std::printf("serve: completed=%llu cache_hits=%llu rejected_full=%llu "
              "cancelled_deadline=%llu batches=%llu\n",
              static_cast<unsigned long long>(stats.completed.value()),
              static_cast<unsigned long long>(stats.cache_hits.value()),
              static_cast<unsigned long long>(stats.rejected_full.value()),
              static_cast<unsigned long long>(
                  stats.cancelled_deadline.value()),
              static_cast<unsigned long long>(stats.batches.value()));
  std::printf("serve: batch_size mean=%.2f max=%.0f | latency p50=%.1fms "
              "p95=%.1fms p99=%.1fms\n",
              batch.mean(), batch.max, latency.quantile(0.5) * 1e3,
              latency.quantile(0.95) * 1e3, latency.quantile(0.99) * 1e3);
}

/// Reconstructs the merged dump and requires a complete timeline for
/// every request; returns the report or nullopt after printing why.
std::optional<serve::observe::InspectReport> require_coverage(
    serve::ShardedService& sharded, std::size_t submitted,
    const char* mode) {
  const auto dump =
      serve::observe::parse_flight_dump(sharded.flight_dump_json());
  if (!dump) {
    std::fprintf(stderr,
                 "repro_served: %s FAILED — flight dump unparsable\n", mode);
    return std::nullopt;
  }
  auto inspect = serve::observe::reconstruct(dump->events);
  if (inspect.requests.size() != submitted ||
      inspect.complete != submitted) {
    std::fprintf(stderr,
                 "repro_served: %s FAILED — flight recorder covers %zu/%zu "
                 "requests (%zu complete)\n",
                 mode, inspect.requests.size(), submitted, inspect.complete);
    return std::nullopt;
  }
  return inspect;
}

/// The socket conformance selftest (see the header comment).
int socket_selftest(serve::ShardedService& sharded,
                    diffusion::TraceDiffusion& pipeline,
                    const diffusion::GenerateOptions& base_options,
                    std::size_t requests, std::size_t count,
                    std::size_t steps) {
  // Library reference bytes are computed UP FRONT: the pipeline object
  // supports one generator at a time, so it must not run concurrently
  // with the shard workers.
  std::vector<std::uint64_t> expected_of(requests);
  for (std::size_t k = 0; k < requests; ++k) {
    diffusion::GenerateOptions opts = base_options;
    opts.count = count;
    opts.ddim_steps = steps;
    expected_of[k] = serve::wire::hash_flows(
        pipeline.generate_seeded(static_cast<int>(k % 2), opts, 1000 + k));
  }

  serve::wire::ServerConfig server_cfg;
  server_cfg.port = 0;  // ephemeral: parallel ctest runs never collide
  serve::wire::SocketServer server(sharded, server_cfg);
  server.start();
  sharded.start();
  std::printf("serve: socket selftest on 127.0.0.1:%u (%zu lanes)\n",
              server.port(), sharded.lanes());

  auto make_request = [&](std::size_t k) {
    serve::GenerateRequest req;
    req.class_id = static_cast<int>(k % 2);
    req.seed = 1000 + k;
    req.count = count;
    req.ddim_steps = steps;
    return req;
  };

  std::size_t submitted = 0, mismatches = 0, served = 0;
  const std::size_t sync_requests = requests / 2;

  {
    // Phase 1: synchronous calls — request/response correlation is
    // trivial, so each reply is checked against ITS library bytes.
    serve::wire::BlockingClient client(server.port());
    for (std::size_t k = 0; k < sync_requests; ++k) {
      const auto reply = client.call(make_request(k));
      ++submitted;
      if (!reply || !reply->ok()) {
        std::fprintf(stderr,
                     "repro_served: SOCKET SELFTEST FAILED — request %zu "
                     "got no ok reply\n", k);
        return 1;
      }
      ++served;
      if (serve::wire::hash_wire_flows(reply->response->flows) !=
          expected_of[k]) {
        ++mismatches;
      }
    }

    // A malformed payload (bad JSON) must answer a typed bad_request
    // error frame and leave the connection usable.
    std::vector<std::uint8_t> bad;
    serve::wire::FrameWriter frame(bad, serve::wire::FrameType::kRequest);
    const char junk[] = "{\"model\": nope}";
    for (const char c : junk) {
      if (c != '\0') bad.push_back(static_cast<std::uint8_t>(c));
    }
    frame.end();
    client.send_raw(bad.data(), bad.size());
    // Payload errors mint a trace id at decode, so the rejected probe
    // leaves its own (complete) timeline in the flight recorder.
    ++submitted;
    const auto error_reply = client.read_reply(30.0);
    if (!error_reply || error_reply->ok() ||
        error_reply->error->error != "bad_request") {
      std::fprintf(stderr,
                   "repro_served: SOCKET SELFTEST FAILED — malformed "
                   "payload did not answer a typed bad_request frame\n");
      return 1;
    }
    const auto after = client.call(make_request(0));
    ++submitted;
    if (!after || !after->ok()) {
      std::fprintf(stderr,
                   "repro_served: SOCKET SELFTEST FAILED — connection "
                   "unusable after a payload error\n");
      return 1;
    }
    ++served;
    if (serve::wire::hash_wire_flows(after->response->flows) !=
        expected_of[0]) {
      ++mismatches;
    }
  }

  {
    // Phase 2: a pipelined burst. With sharded lanes replies may come
    // back out of order, so verification is by multiset: every reply's
    // content hash must consume one expected (class, seed) hash.
    serve::wire::BlockingClient client(server.port());
    std::multimap<std::uint64_t, std::size_t> expected;
    for (std::size_t k = sync_requests; k < requests; ++k) {
      client.send(make_request(k));
      ++submitted;
      expected.emplace(expected_of[k], k);
    }
    for (std::size_t k = sync_requests; k < requests; ++k) {
      const auto reply = client.read_reply(60.0);
      if (!reply || !reply->ok()) {
        std::fprintf(stderr,
                     "repro_served: SOCKET SELFTEST FAILED — pipelined "
                     "reply %zu missing\n", k - sync_requests);
        return 1;
      }
      ++served;
      const auto it = expected.find(
          serve::wire::hash_wire_flows(reply->response->flows));
      if (it == expected.end()) {
        ++mismatches;
      } else {
        expected.erase(it);
      }
    }
    if (!expected.empty()) mismatches += expected.size();
  }

  // Clients are closed; wait for the server loop to reap both
  // connections so the dump has their conn_closed events.
  for (int spin = 0; spin < 500 && server.open_connections() > 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  std::printf("serve: health %s\n", sharded.health_json().c_str());
  server.stop();
  sharded.stop();

  if (mismatches > 0) {
    std::fprintf(stderr,
                 "repro_served: SOCKET SELFTEST FAILED — %zu replies "
                 "diverged from the library\n", mismatches);
    return 1;
  }

  const auto inspect = require_coverage(sharded, submitted,
                                        "SOCKET SELFTEST");
  if (!inspect) return 1;
  if (inspect->connections.size() != 2) {
    std::fprintf(stderr,
                 "repro_served: SOCKET SELFTEST FAILED — expected 2 "
                 "connection summaries, got %zu\n",
                 inspect->connections.size());
    return 1;
  }
  for (const auto& conn : inspect->connections) {
    if (!conn.opened || !conn.closed ||
        conn.frames_decoded != conn.frames_sent) {
      std::fprintf(stderr,
                   "repro_served: SOCKET SELFTEST FAILED — conn %llu "
                   "unbalanced (%llu in / %llu out, opened=%d closed=%d)\n",
                   static_cast<unsigned long long>(conn.conn_id),
                   static_cast<unsigned long long>(conn.frames_decoded),
                   static_cast<unsigned long long>(conn.frames_sent),
                   conn.opened ? 1 : 0, conn.closed ? 1 : 0);
      return 1;
    }
  }
  std::printf("serve: socket selftest OK — %zu replies over the wire, all "
              "bit-identical to the library, %zu/%zu timelines complete\n",
              served, inspect->complete, submitted);
  return 0;
}

int run(int argc, char** argv) {
  bool selftest = false, sock_selftest = false, listen_mode = false;
  bool health = false, dump_flightrec = false;
  std::string checkpoint, lora_path, classes_csv;
  std::string flightrec_path;
  std::size_t lanes = env_size(kEnvServeLanes, 1);
  std::size_t port = env_size(kEnvServePort, 0);
  std::size_t requests = 32, count = 2, steps = 8, max_batch = 8, queue = 64;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      return i + 1 < argc ? std::string(argv[++i]) : std::string();
    };
    if (arg == "--selftest") selftest = true;
    else if (arg == "--socket-selftest") sock_selftest = true;
    else if (arg == "--listen") {
      listen_mode = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        port = parse_size(next()).value_or(port);
      }
    }
    else if (arg == "--health") health = true;
    else if (arg == "--dump-flightrec") {
      dump_flightrec = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') flightrec_path = next();
    }
    else if (arg == "--checkpoint") checkpoint = next();
    else if (arg == "--lora") lora_path = next();
    else if (arg == "--classes") classes_csv = next();
    else if (arg == "--lanes") lanes = parse_size(next()).value_or(lanes);
    else if (arg == "--requests") requests = parse_size(next()).value_or(requests);
    else if (arg == "--count") count = parse_size(next()).value_or(count);
    else if (arg == "--steps") steps = parse_size(next()).value_or(steps);
    else if (arg == "--batch") max_batch = parse_size(next()).value_or(max_batch);
    else if (arg == "--queue") queue = parse_size(next()).value_or(queue);
    else {
      std::fprintf(stderr, "repro_served: unknown argument '%s'\n",
                   arg.c_str());
      return 2;
    }
  }

  serve::ModelRegistry registry;
  std::shared_ptr<diffusion::TraceDiffusion> pipeline;
  std::size_t num_classes = 2;
  if (!checkpoint.empty()) {
    const auto class_names = split_csv(classes_csv);
    if (class_names.empty() || class_names.front().empty()) {
      std::fprintf(stderr,
                   "repro_served: --checkpoint requires --classes a,b,...\n");
      return 2;
    }
    registry.load_checkpoint("default", toy_config(), class_names,
                             checkpoint, "ckpt-v1", lora_path);
    num_classes = class_names.size();
    std::printf("serve: loaded checkpoint '%s' (%zu classes)\n",
                checkpoint.c_str(), num_classes);
  } else {
    pipeline = train_toy_model();
    registry.install("default", pipeline, "toy-v1");
    std::printf("serve: trained toy model (2 classes)\n");
  }

  serve::ShardedConfig shard_cfg;
  shard_cfg.lanes = lanes == 0 ? 1 : lanes;
  shard_cfg.service.queue_capacity = queue;
  shard_cfg.service.batch.max_batch_flows = max_batch;
  shard_cfg.service.batch.max_wait = 0.001;
  shard_cfg.service.worker_idle_wait = 0.002;
  shard_cfg.service.base_options.ddim_steps = steps;
  // The selftests assert full timeline coverage; --dump-flightrec must
  // produce a dump regardless of REPRO_TELEMETRY. All arm the recorders.
  shard_cfg.service.flightrec_force =
      selftest || sock_selftest || listen_mode || dump_flightrec || health;
  serve::ShardedService sharded(registry, shard_cfg);

  auto write_reports = [&]() -> int {
    if (dump_flightrec) {
      const std::string dump_path =
          flightrec_path.empty()
              ? telemetry::report_path("FLIGHTREC_dump.json")
              : flightrec_path;
      if (!telemetry::write_text_file(dump_path,
                                      sharded.flight_dump_json())) {
        std::fprintf(stderr, "repro_served: cannot write %s\n",
                     dump_path.c_str());
        return 1;
      }
      std::printf("serve: flight recorder dump written to %s\n",
                  dump_path.c_str());
    }
    const std::string report = telemetry::metrics_json(
        telemetry::Registry::instance().snapshot());
    const std::string path = telemetry::report_path("SERVED_report.json");
    if (!telemetry::write_text_file(path, report)) {
      std::fprintf(stderr, "repro_served: cannot write %s\n", path.c_str());
      return 1;
    }
    std::printf("serve: report written to %s\n", path.c_str());
    return 0;
  };

  if (sock_selftest) {
    if (!pipeline) {
      std::fprintf(stderr,
                   "repro_served: --socket-selftest needs the toy model "
                   "(omit --checkpoint)\n");
      return 2;
    }
    const int rc = socket_selftest(sharded, *pipeline,
                                   shard_cfg.service.base_options, requests,
                                   count, steps);
    print_stats(sharded);
    const int report_rc = write_reports();
    return rc != 0 ? rc : report_rc;
  }

  if (listen_mode) {
    serve::wire::ServerConfig server_cfg;
    server_cfg.port = static_cast<std::uint16_t>(port);
    serve::wire::SocketServer server(sharded, server_cfg);
    server.start();
    sharded.start();
    std::printf("serve: listening on 127.0.0.1:%u (%zu lanes)\n",
                server.port(), sharded.lanes());
    std::printf("serve: close stdin (Ctrl-D) to stop\n");
    std::fflush(stdout);
    char line[256];
    while (std::fgets(line, sizeof line, stdin) != nullptr) {
      // Any input line prints a fresh health snapshot — handy when the
      // daemon runs under a terminal.
      std::printf("%s\n", sharded.health_json().c_str());
      std::fflush(stdout);
    }
    if (health) std::printf("%s\n", sharded.health_json().c_str());
    server.stop();
    sharded.stop();
    print_stats(sharded);
    return write_reports();
  }

  sharded.start();

  // Closed-loop window driver: keep a few requests in flight so the
  // batcher has material, without overrunning the bounded queues.
  struct InFlight {
    std::shared_future<serve::Response> response;
    int class_id;
    std::uint64_t seed;
  };
  std::vector<InFlight> in_flight;
  struct Served {
    serve::Response response;
    int class_id;
    std::uint64_t seed;
  };
  std::vector<Served> served;
  std::size_t submitted = 0, served_flows = 0, mismatches = 0;
  while (submitted < requests || !in_flight.empty()) {
    while (submitted < requests && in_flight.size() < max_batch) {
      serve::GenerateRequest req;
      req.class_id = static_cast<int>(submitted % num_classes);
      req.seed = 1000 + submitted;
      req.count = count;
      req.ddim_steps = steps;
      const auto result = sharded.submit(req);
      ++submitted;
      if (result.accepted) {
        in_flight.push_back({result.response, req.class_id, req.seed});
      }
    }
    if (in_flight.empty()) continue;
    const InFlight front = in_flight.front();
    in_flight.erase(in_flight.begin());
    const serve::Response response = front.response.get();
    if (response.status != serve::ResponseStatus::kOk) continue;
    served_flows += response.flows.size();
    if (selftest && pipeline) {
      served.push_back({response, front.class_id, front.seed});
    }
  }
  sharded.stop();

  // Selftest verification runs only after the workers stopped: the
  // pipeline object supports one generator at a time, and the served
  // bits must match the library regardless of when they are replayed.
  for (const Served& s : served) {
    diffusion::GenerateOptions lib_opts = shard_cfg.service.base_options;
    lib_opts.count = count;
    const auto direct =
        pipeline->generate_seeded(s.class_id, lib_opts, s.seed);
    if (serve::wire::hash_flows(direct) !=
        serve::wire::hash_flows(s.response.flows)) {
      ++mismatches;
    }
  }

  std::printf("serve: %zu requests submitted, %zu flows served\n",
              submitted, served_flows);
  print_stats(sharded);

  if (health) {
    std::printf("%s\n", sharded.health_json().c_str());
  }
  const int report_rc = write_reports();
  if (report_rc != 0) return report_rc;

  if (selftest) {
    // Flight-recorder coverage gate: the merged dump must reconstruct,
    // through the same JSON round-trip repro_trace_inspect uses, a
    // complete admission-to-terminal timeline for every request.
    const auto inspect = require_coverage(sharded, submitted, "SELFTEST");
    if (!inspect) return 1;
    std::printf("serve: flight recorder covered %zu/%zu request timelines\n",
                inspect->complete, submitted);
    std::printf("serve: health %s\n", sharded.health_json().c_str());
    if (mismatches > 0) {
      std::fprintf(stderr,
                   "repro_served: SELFTEST FAILED — %zu served responses "
                   "diverged from the library\n",
                   mismatches);
      return 1;
    }
    if (served_flows == 0) {
      std::fprintf(stderr, "repro_served: SELFTEST FAILED — nothing served\n");
      return 1;
    }
    std::printf("serve: selftest OK — every served response bit-identical "
                "to the library\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
