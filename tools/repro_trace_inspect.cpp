// repro_trace_inspect — reconstructs per-request timelines and
// per-batch composition from serving-layer observability artifacts.
//
// Input (auto-detected by shape):
//   * a flight-recorder dump (repro_served --dump-flightrec, or
//     FlightRecorder::dump_json): rebuilds every request's
//     admission-to-terminal event timeline and the composition of each
//     batched model call, flagging incomplete timelines;
//   * a Chrome trace export (*.trace.json from telemetry_report /
//     bench runs): summarizes spans (calls, total wall time) and lists
//     the serve.batch.execute slices with their args (batch id, request
//     count, flows, model version).
//
// Modes:
//   --json             machine-readable report instead of text
//   --expect-complete  flight-dump mode: exit non-zero unless the dump
//                      holds at least one request and every timeline is
//                      complete (the check.sh flight-recorder gate)
//   --top N            chrome mode: how many spans to list (default 10)
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/env.hpp"
#include "common/telemetry/export.hpp"
#include "serve/observe/inspect.hpp"

using namespace repro;
using serve::observe::JsonValue;

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return in ? out.str() : std::string();
}

struct SpanAgg {
  std::uint64_t calls = 0;
  double total_us = 0.0;
};

int inspect_chrome_trace(const JsonValue& doc, bool json_mode,
                         std::size_t top) {
  std::map<std::string, SpanAgg> spans;
  std::vector<const JsonValue*> batch_slices;
  for (const JsonValue& event : doc.array) {
    const JsonValue* ph = event.find("ph");
    if (ph == nullptr || ph->str_or("") != "X") continue;
    const JsonValue* name = event.find("name");
    if (name == nullptr) continue;
    SpanAgg& agg = spans[name->str_or("")];
    agg.calls += 1;
    const JsonValue* dur = event.find("dur");
    agg.total_us += dur != nullptr ? dur->num_or(0.0) : 0.0;
    if (name->str_or("") == "serve.batch.execute") {
      batch_slices.push_back(&event);
    }
  }
  std::vector<std::pair<std::string, SpanAgg>> ranked(spans.begin(),
                                                      spans.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.second.total_us > b.second.total_us;
  });
  if (ranked.size() > top) ranked.resize(top);

  if (json_mode) {
    telemetry::JsonWriter json;
    json.begin_object();
    json.key("spans");
    json.begin_array();
    for (const auto& [name, agg] : ranked) {
      json.begin_object();
      json.key("name");
      json.value(name);
      json.key("calls");
      json.value(agg.calls);
      json.key("total_ms");
      json.value(agg.total_us / 1e3);
      json.end_object();
    }
    json.end_array();
    json.key("batches");
    json.begin_array();
    for (const JsonValue* slice : batch_slices) {
      json.begin_object();
      const JsonValue* args = slice->find("args");
      if (args != nullptr && args->is_object()) {
        for (const auto& [key, value] : args->object) {
          json.key(key);
          if (value.type == JsonValue::Type::kNumber) {
            json.value(value.number);
          } else {
            json.value(value.str_or(""));
          }
        }
      }
      const JsonValue* dur = slice->find("dur");
      json.key("dur_ms");
      json.value((dur != nullptr ? dur->num_or(0.0) : 0.0) / 1e3);
      json.end_object();
    }
    json.end_array();
    json.end_object();
    std::printf("%s\n", std::move(json).str().c_str());
    return 0;
  }

  std::printf("chrome trace: %zu span names, %zu serve.batch.execute "
              "slices\n",
              spans.size(), batch_slices.size());
  std::printf("top spans by total wall time:\n");
  for (const auto& [name, agg] : ranked) {
    std::printf("  %-40s calls=%-8llu total=%.3fms\n", name.c_str(),
                static_cast<unsigned long long>(agg.calls),
                agg.total_us / 1e3);
  }
  for (const JsonValue* slice : batch_slices) {
    const JsonValue* args = slice->find("args");
    const JsonValue* dur = slice->find("dur");
    std::printf("  batch");
    if (args != nullptr && args->is_object()) {
      for (const auto& [key, value] : args->object) {
        if (value.type == JsonValue::Type::kNumber) {
          std::printf(" %s=%.0f", key.c_str(), value.number);
        } else {
          std::printf(" %s=%s", key.c_str(), value.str_or("").c_str());
        }
      }
    }
    std::printf(" dur=%.3fms\n",
                (dur != nullptr ? dur->num_or(0.0) : 0.0) / 1e3);
  }
  return 0;
}

int run(int argc, char** argv) {
  bool json_mode = false, expect_complete = false;
  std::size_t top = 10;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") json_mode = true;
    else if (arg == "--expect-complete") expect_complete = true;
    else if (arg == "--top" && i + 1 < argc)
      top = parse_size(argv[++i]).value_or(top);
    else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "repro_trace_inspect: unknown option '%s'\n",
                   arg.c_str());
      return 2;
    } else {
      path = arg;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr,
                 "usage: repro_trace_inspect [--json] [--expect-complete] "
                 "[--top N] <flight dump | chrome trace json>\n");
    return 2;
  }

  const std::string text = read_file(path);
  if (text.empty()) {
    std::fprintf(stderr, "repro_trace_inspect: cannot read %s\n",
                 path.c_str());
    return 1;
  }

  if (const auto dump = serve::observe::parse_flight_dump(text)) {
    const auto report = serve::observe::reconstruct(dump->events);
    if (json_mode) {
      std::printf("%s\n", serve::observe::report_json(report).c_str());
    } else {
      std::printf("%s", serve::observe::report_text(report).c_str());
      if (dump->overwritten > 0) {
        std::printf("note: ring overwrote %llu events; oldest timelines "
                    "may be truncated\n",
                    static_cast<unsigned long long>(dump->overwritten));
      }
    }
    if (expect_complete) {
      if (report.requests.empty()) {
        std::fprintf(stderr,
                     "repro_trace_inspect: FAIL — dump holds no requests\n");
        return 1;
      }
      if (report.complete != report.requests.size()) {
        std::fprintf(stderr,
                     "repro_trace_inspect: FAIL — %zu/%zu timelines "
                     "incomplete\n",
                     report.requests.size() - report.complete,
                     report.requests.size());
        return 1;
      }
      // Socket dumps additionally carry connection summaries; a
      // complete dump has every connection closed and frame-balanced
      // (each decoded request frame answered by exactly one reply).
      for (const auto& conn : report.connections) {
        if (!conn.opened || !conn.closed ||
            conn.frames_decoded != conn.frames_sent) {
          std::fprintf(stderr,
                       "repro_trace_inspect: FAIL — conn %llu unbalanced "
                       "(%llu frames in / %llu out, opened=%d closed=%d)\n",
                       static_cast<unsigned long long>(conn.conn_id),
                       static_cast<unsigned long long>(conn.frames_decoded),
                       static_cast<unsigned long long>(conn.frames_sent),
                       conn.opened ? 1 : 0, conn.closed ? 1 : 0);
          return 1;
        }
      }
      std::fprintf(stderr, "repro_trace_inspect: OK — %zu/%zu timelines "
                   "complete, %zu connections balanced\n",
                   report.complete, report.requests.size(),
                   report.connections.size());
    }
    return 0;
  }

  const auto doc = serve::observe::parse_json(text);
  if (doc && doc->is_array()) {
    if (expect_complete) {
      std::fprintf(stderr,
                   "repro_trace_inspect: --expect-complete requires a "
                   "flight-recorder dump\n");
      return 2;
    }
    return inspect_chrome_trace(*doc, json_mode, top);
  }

  std::fprintf(stderr,
               "repro_trace_inspect: %s is neither a flight-recorder dump "
               "nor a chrome trace\n",
               path.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
