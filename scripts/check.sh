#!/usr/bin/env sh
# One-stop pre-merge gate: configure with contracts enforced, build the
# whole tree warning-free (-Werror is always on), run the lint label
# first (fast, catches invariant violations before the slow suites),
# then the full test suite.
#
# Usage: scripts/check.sh [build-dir]   (default: build-check)
set -eu

ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
BUILD_DIR=${1:-"$ROOT/build-check"}
JOBS=$(nproc 2>/dev/null || echo 2)

echo "== configure (REPRO_CHECKS=ON) =="
cmake -B "$BUILD_DIR" -S "$ROOT" -DREPRO_CHECKS=ON

echo "== build (-Wall -Wextra -Wconversion -Wsign-conversion -Wshadow -Werror) =="
cmake --build "$BUILD_DIR" -j "$JOBS"

echo "== lint label =="
ctest --test-dir "$BUILD_DIR" -L lint --output-on-failure

echo "== lint --json (analysis engine: token + determinism + architecture) =="
LINT_JSON="$BUILD_DIR/lint_findings.json"
"$BUILD_DIR/tools/repro_lint" --root "$ROOT" --json \
  src bench tools tests examples > "$LINT_JSON"
grep -q '"findings": \[\]' "$LINT_JSON" || {
  echo "check.sh: non-waived lint findings:" >&2
  cat "$LINT_JSON" >&2
  exit 1
}

echo "== include graph (refresh reports/include_graph.dot) =="
mkdir -p "$ROOT/reports"
"$BUILD_DIR/tools/repro_lint" --root "$ROOT" \
  --graph-dot "$ROOT/reports/include_graph.dot" src > /dev/null

echo "== serving layer (label: serve) =="
ctest --test-dir "$BUILD_DIR" -L serve --output-on-failure

echo "== socket front-end (label: serve_net) =="
ctest --test-dir "$BUILD_DIR" -L serve_net --output-on-failure

echo "== flight recorder gate (selftest -> dump -> inspect) =="
FLIGHTREC_DUMP="$BUILD_DIR/check_flightrec.json"
"$BUILD_DIR/tools/repro_served" --selftest --requests 12 --steps 4 \
  --dump-flightrec "$FLIGHTREC_DUMP"
"$BUILD_DIR/tools/repro_trace_inspect" --expect-complete "$FLIGHTREC_DUMP"

echo "== socket flight recorder gate (2 lanes, over TCP) =="
SOCKET_DUMP="$BUILD_DIR/check_socket_flightrec.json"
"$BUILD_DIR/tools/repro_served" --socket-selftest --requests 10 --steps 4 \
  --lanes 2 --dump-flightrec "$SOCKET_DUMP"
"$BUILD_DIR/tools/repro_trace_inspect" --expect-complete "$SOCKET_DUMP"

echo "== open-loop replay (label: replay) =="
ctest --test-dir "$BUILD_DIR" -L replay --output-on-failure

echo "== full test suite =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

echo "== bench smoke (label: bench) =="
ctest --test-dir "$BUILD_DIR" -L bench --output-on-failure

echo "== fastpath fidelity gate (int8 + distilled vs fp32/DDIM-20) =="
# Shrunken-but-real run of the fast-path fidelity gate: the int8 GEMM
# route and the distilled few-step sampler must stay within
# REPRO_FIDELITY_EPS (0.02 default) of the fp32/DDIM-20 baseline on the
# Table-2 RF scenarios. The binary exits 1 on violation. The run is
# fully deterministic (fixed seeds, lane-invariant kernels), and the
# scale is the smallest where the RF-seed-averaged scores resolve the
# 0.02 eps: 32 synthetic flows/class, 5 RF seeds per scenario, and
# enough training that the distilled student tracks its teacher.
REPRO_PACKETS=16 REPRO_FLOWS_PER_CLASS=30 REPRO_TRAIN_PER_CLASS=20 \
  REPRO_SYN_PER_CLASS=32 REPRO_AE_EPOCHS=14 REPRO_DIFF_EPOCHS=10 \
  REPRO_CTRL_EPOCHS=4 REPRO_RF_TREES=40 REPRO_FIDELITY_RF_REPEATS=5 \
  REPRO_BENCH_DIR="$BUILD_DIR/bench" \
  "$BUILD_DIR/bench/fidelity_fastpath"

echo "== check.sh: all gates green =="
